// Package raster implements the pixel model used as the system's
// "screenshot" substrate. A raster Image is a palette-indexed pixel grid;
// the renderer draws DOM content into it, the OCR engine reads glyphs back
// out of it, the object detector scans it for buttons/logos/CAPTCHAs, and
// the perceptual hash summarizes it. It replaces the PNG screenshots the
// paper's Puppeteer crawler captures, preserving every downstream code path
// (OCR, detection, visual similarity) without an image codec dependency.
package raster

import (
	"fmt"
	"strings"
	"sync"
)

// Color is a palette index. The palette is small on purpose: visual analysis
// in this system cares about layout and coarse color distribution, not
// shading.
type Color uint8

// The palette.
const (
	White Color = iota
	Black
	Gray
	LightGray
	Red
	Green
	Blue
	Yellow
	Orange
	Purple
	Teal
	Navy
	Maroon
	Olive
	Pink
	Brown
	NumColors // sentinel: number of palette entries
)

var colorNames = [...]string{
	"white", "black", "gray", "lightgray", "red", "green", "blue", "yellow",
	"orange", "purple", "teal", "navy", "maroon", "olive", "pink", "brown",
}

// String returns the palette name of c.
func (c Color) String() string {
	if int(c) < len(colorNames) {
		return colorNames[c]
	}
	return fmt.Sprintf("color(%d)", uint8(c))
}

// ParseColor returns the palette color with the given name, defaulting to
// Black for unknown names.
func ParseColor(name string) Color {
	name = strings.ToLower(strings.TrimSpace(name))
	for i, n := range colorNames {
		if n == name {
			return Color(i)
		}
	}
	return Black
}

// Image is a W x H grid of palette pixels. The zero value is an empty image;
// create usable images with New.
type Image struct {
	W, H int
	Pix  []Color // row-major, len == W*H
}

// New returns a W x H image filled with bg.
func New(w, h int, bg Color) *Image {
	img := &Image{W: w, H: h, Pix: make([]Color, w*h)}
	if bg != 0 {
		for i := range img.Pix {
			img.Pix[i] = bg
		}
	}
	return img
}

// imagePool recycles pixel buffers between Get and Release. Screenshots are
// by far the largest per-session allocation (a full-page rendering is up to
// W x 4000 pixels, re-allocated on every DOM mutation), so the renderer
// draws into pooled images and the browser releases them when a rendering
// is invalidated.
var imagePool = sync.Pool{New: func() any { return new(Image) }}

// Get returns a W x H image filled with bg, drawing its pixel buffer from
// the pool when one of sufficient capacity is available. The caller owns
// the image until Release; an image that is never released is simply
// garbage-collected. Contents are identical to New's.
func Get(w, h int, bg Color) *Image {
	im := imagePool.Get().(*Image)
	if cap(im.Pix) < w*h {
		im.Pix = make([]Color, w*h)
	}
	im.W, im.H = w, h
	im.Pix = im.Pix[:w*h]
	if bg == 0 {
		clear(im.Pix)
	} else {
		for i := range im.Pix {
			im.Pix[i] = bg
		}
	}
	return im
}

// Release returns the image's buffer to the pool. The image must not be
// read or written afterwards, and no live reference to it (or a view of its
// pixels) may remain. Calling Release is optional and safe only for images
// obtained from Get or New that the caller fully owns.
func (im *Image) Release() {
	if im == nil || im.Pix == nil {
		return
	}
	imagePool.Put(im)
}

// In reports whether (x, y) lies inside the image.
func (im *Image) In(x, y int) bool {
	return x >= 0 && y >= 0 && x < im.W && y < im.H
}

// At returns the pixel at (x, y); out-of-bounds reads return White.
func (im *Image) At(x, y int) Color {
	if !im.In(x, y) {
		return White
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, c Color) {
	if im.In(x, y) {
		im.Pix[y*im.W+x] = c
	}
}

// Fill sets every pixel in the rectangle to c. The rectangle is clipped to
// the image.
func (im *Image) Fill(r Rect, c Color) {
	r = r.Clip(im.W, im.H)
	for y := r.Y; y < r.Y+r.H; y++ {
		row := im.Pix[y*im.W : y*im.W+im.W]
		for x := r.X; x < r.X+r.W; x++ {
			row[x] = c
		}
	}
}

// Outline draws a 1-pixel border just inside the rectangle.
func (im *Image) Outline(r Rect, c Color) {
	for x := r.X; x < r.X+r.W; x++ {
		im.Set(x, r.Y, c)
		im.Set(x, r.Y+r.H-1, c)
	}
	for y := r.Y; y < r.Y+r.H; y++ {
		im.Set(r.X, y, c)
		im.Set(r.X+r.W-1, y, c)
	}
}

// Blit copies src onto im with its top-left corner at (x, y), skipping
// pixels that fall outside im.
func (im *Image) Blit(src *Image, x, y int) {
	for sy := 0; sy < src.H; sy++ {
		for sx := 0; sx < src.W; sx++ {
			im.Set(x+sx, y+sy, src.Pix[sy*src.W+sx])
		}
	}
}

// Sub returns a copy of the pixels inside r (clipped). The result is a new
// image; mutating it does not affect im.
func (im *Image) Sub(r Rect) *Image {
	r = r.Clip(im.W, im.H)
	out := New(r.W, r.H, White)
	for y := 0; y < r.H; y++ {
		copy(out.Pix[y*out.W:(y+1)*out.W], im.Pix[(r.Y+y)*im.W+r.X:(r.Y+y)*im.W+r.X+r.W])
	}
	return out
}

// Clone returns a deep copy of im.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]Color, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Histogram returns the count of each palette color in the image.
func (im *Image) Histogram() [NumColors]int {
	var h [NumColors]int
	for _, p := range im.Pix {
		if p < NumColors {
			h[p]++
		}
	}
	return h
}

// Downsample returns a w x h thumbnail where each output pixel is the
// dominant color of its source block. Used by the visual-similarity model.
func (im *Image) Downsample(w, h int) *Image {
	out := New(w, h, White)
	if im.W == 0 || im.H == 0 {
		return out
	}
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			x0, x1 := ox*im.W/w, (ox+1)*im.W/w
			y0, y1 := oy*im.H/h, (oy+1)*im.H/h
			if x1 <= x0 {
				x1 = x0 + 1
			}
			if y1 <= y0 {
				y1 = y0 + 1
			}
			var counts [NumColors]int
			for y := y0; y < y1 && y < im.H; y++ {
				for x := x0; x < x1 && x < im.W; x++ {
					counts[im.At(x, y)]++
				}
			}
			best, bestN := White, -1
			for c, n := range counts {
				if n > bestN {
					best, bestN = Color(c), n
				}
			}
			out.Set(ox, oy, best)
		}
	}
	return out
}

// Grayscale intensity per palette color, 0 (black) .. 255 (white), used by
// perceptual hashing. Values are coarse by design.
var intensity = [NumColors]int{
	255, 0, 128, 200, 100, 110, 90, 220, 160, 80, 120, 40, 60, 100, 210, 70,
}

// ColorIntensity returns the grayscale intensity of a palette color.
// Out-of-palette values read as blank (255).
func ColorIntensity(c Color) int {
	if c < NumColors {
		return intensity[c]
	}
	return 255
}

// Intensity returns the grayscale intensity of the pixel at (x, y).
func (im *Image) Intensity(x, y int) int {
	c := im.At(x, y)
	if c < NumColors {
		return intensity[c]
	}
	return 255
}

// Rect is an axis-aligned rectangle with top-left (X, Y) and size (W, H).
type Rect struct {
	X, Y, W, H int
}

// R is shorthand for constructing a Rect.
func R(x, y, w, h int) Rect { return Rect{x, y, w, h} }

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Clip returns r intersected with the rectangle (0, 0, w, h).
func (r Rect) Clip(w, h int) Rect {
	if r.X < 0 {
		r.W += r.X
		r.X = 0
	}
	if r.Y < 0 {
		r.H += r.Y
		r.Y = 0
	}
	if r.X+r.W > w {
		r.W = w - r.X
	}
	if r.Y+r.H > h {
		r.H = h - r.Y
	}
	if r.W < 0 {
		r.W = 0
	}
	if r.H < 0 {
		r.H = 0
	}
	return r
}

// Intersects reports whether r and o overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H
}

// Intersect returns the overlapping region of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x0 := max(r.X, o.X)
	y0 := max(r.Y, o.Y)
	x1 := min(r.X+r.W, o.X+o.W)
	y1 := min(r.Y+r.H, o.Y+o.H)
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	x0 := min(r.X, o.X)
	y0 := min(r.Y, o.Y)
	x1 := max(r.X+r.W, o.X+o.W)
	y1 := max(r.Y+r.H, o.Y+o.H)
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Area returns the rectangle's area, 0 when empty.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// IoU returns intersection-over-union of two rectangles, the standard object
// detection overlap metric.
func (r Rect) IoU(o Rect) float64 {
	inter := r.Intersect(o).Area()
	if inter == 0 {
		return 0
	}
	return float64(inter) / float64(r.Area()+o.Area()-inter)
}

// CenterX returns the x coordinate of the rectangle's center.
func (r Rect) CenterX() int { return r.X + r.W/2 }

// CenterY returns the y coordinate of the rectangle's center.
func (r Rect) CenterY() int { return r.Y + r.H/2 }

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// String renders the rectangle for logs and error messages.
func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d %dx%d)", r.X, r.Y, r.W, r.H)
}
