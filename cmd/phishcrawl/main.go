// Command phishcrawl runs the full measurement pipeline: generate the
// corpus, serve it, train the crawler's models, and crawl every site with
// the farm, printing per-outcome statistics, the failure taxonomy,
// per-stage timings, and throughput. The -chaos flags inject a
// deterministic mix of dead/slow/flaky/5xx/truncated/takedown sites into
// the feed (see docs/OPERATIONS.md); the -cpuprofile/-memprofile flags
// capture pprof profiles of the run for performance work. The -journal
// flags make the crawl itself crash-safe: every finished session streams
// into a durable segment store, and -resume continues an interrupted run,
// re-crawling only the URLs it never completed. -status-addr serves live
// run progress (counts, ETA, per-stage latency percentiles) over HTTP, and
// -progress prints a periodic one-line summary to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/farm"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sessionio"
	"repro/internal/triage"
)

func main() {
	numSites := flag.Int("sites", 1000, "corpus size")
	seed := flag.Int64("seed", 42, "seed")
	workers := flag.Int("workers", 30, "parallel crawl sessions (paper: 30)")
	sample := flag.Int("sample", 0, "crawl only the first N sites (0 = all)")
	out := flag.String("o", "", "write session logs as JSON Lines to this file")
	detectorTrain := flag.Int("detector-train", 0, "object-detector training pages (0 = pipeline default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the crawl to this file")
	journalDir := flag.String("journal", "", "stream finished sessions into a crash-safe journal at this directory")
	resume := flag.Bool("resume", false, "resume the journal at -journal: skip already-completed URLs")
	compact := flag.Bool("compact", false, "after the crawl, compact superseded records out of the journal")
	journalSync := flag.String("journal-sync", "always", "journal fsync policy: always | group | batch | none")

	def := chaos.DefaultProfile()
	chaosOn := flag.Bool("chaos", false, "inject operational faults into the feed (dead/stalling/slow/5xx/truncated/takedown/flaky sites)")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault-assignment seed (0 = derive from -seed)")
	deadRate := flag.Float64("chaos-dead", def.DeadRate, "fraction of sites refusing connections")
	stallRate := flag.Float64("chaos-stall", def.StallRate, "fraction of sites stalling past the fetch deadline")
	slowRate := flag.Float64("chaos-slow", def.SlowRate, "fraction of sites answering slowly but within deadline")
	serrRate := flag.Float64("chaos-5xx", def.ServerErrorRate, "fraction of sites answering every request with a 503")
	truncRate := flag.Float64("chaos-truncate", def.TruncateRate, "fraction of sites truncating response bodies")
	takedownRate := flag.Float64("chaos-takedown", def.TakedownRate, "fraction of sites replaced by a takedown page")
	flakyRate := flag.Float64("chaos-flaky", def.FlakyRate, "fraction of sites resetting their first connections")
	retries := flag.Int("retries", 0, "extra attempts per transiently-failed session (0 = default 2)")
	retryBase := flag.Duration("retry-base", 0, "backoff before the first retry (0 = farm default)")
	retryMax := flag.Duration("retry-max", 0, "cap on the exponential backoff (0 = farm default)")
	sessionBudget := flag.Duration("session-budget", 0, "per-session wall-clock budget (0 = crawler default, the paper's 20-minute timeout scaled)")
	fetchTimeout := flag.Duration("fetch-timeout", 0, "per-fetch deadline (0 = browser default)")
	statusAddr := flag.String("status-addr", "", "serve live run progress over HTTP at this address (e.g. 127.0.0.1:8844; /status, ?format=json; fleet-wide view in coordinator mode)")
	progressEvery := flag.Duration("progress", 0, "print a one-line progress summary to stderr at this interval (0 = off)")
	coordinator := flag.Bool("coordinator", false, "fleet mode: shard the feed into leases for -worker processes and merge their results (requires -fleet-addr and -journal)")
	workerMode := flag.Bool("worker", false, "fleet mode: crawl leases from the coordinator at -fleet-addr, journaling each shard under -journal")
	fleetAddr := flag.String("fleet-addr", "", "coordinator listen address (with -coordinator) or coordinator address to join (with -worker), e.g. 127.0.0.1:8870")
	leaseSites := flag.Int("lease-sites", 0, "feed URLs per fleet lease (0 = default 100)")
	leaseTTL := flag.Duration("lease-ttl", 0, "fleet lease heartbeat expiry: a worker silent this long forfeits its lease for re-issue (0 = default 10s)")
	workerName := flag.String("worker-name", "", "fleet worker identity in leases and status (default worker-<pid>)")
	triageOn := flag.Bool("triage", false, "enable the pre-session triage funnel: lexical URL scoring plus campaign near-duplicate attribution; clone URLs take a fast-path session instead of a full crawl")
	campaignThreshold := flag.Float64("campaign-threshold", triage.DefaultCampaignThreshold, "triage attribution similarity cut in [0,1]: probes at least this similar to an indexed campaign fast-path")
	triageTopK := flag.Int("triage-topk", 0, "keep only the K lexically highest-scored feed URLs; the rest are cut before any fetch (0 = no cut)")
	campaignMin := flag.Int("campaign-min", 0, "clamp generated campaign sizes from below — the clone-heavy-feed knob for triage experiments (0 = paper distribution)")
	cloakRate := flag.Float64("cloak-rate", 0, "fraction of generated campaigns that cloak behind request-fingerprint gates, serving a benign decoy otherwise (0 = no cloaking)")
	cloakRetries := flag.Int("cloak-retries", 0, "adaptive uncloaking budget: re-crawls with a mutated profile after a session lands on a benign decoy (0 = honest single crawl)")
	flag.Parse()

	if err := validateFlags(cliFlags{
		sites:             *numSites,
		sample:            *sample,
		workers:           *workers,
		retries:           *retries,
		sessionBudget:     *sessionBudget,
		fetchTimeout:      *fetchTimeout,
		progress:          *progressEvery,
		journalDir:        *journalDir,
		journalSync:       *journalSync,
		resume:            *resume,
		compact:           *compact,
		statusAddr:        *statusAddr,
		out:               *out,
		coordinator:       *coordinator,
		worker:            *workerMode,
		fleetAddr:         *fleetAddr,
		leaseSites:        *leaseSites,
		leaseTTL:          *leaseTTL,
		triage:            *triageOn,
		campaignThreshold: *campaignThreshold,
		triageTopK:        *triageTopK,
		campaignMin:       *campaignMin,
		cloakRate:         *cloakRate,
		cloakRetries:      *cloakRetries,
	}); err != nil {
		log.Fatal(err)
	}

	if *cpuProfile != "" {
		//phishvet:ignore atomicwrite: pprof needs an open stream; a torn profile from a crash is discarded, not analyzed
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := core.Options{
		NumSites:           *numSites,
		Seed:               *seed,
		Workers:            *workers,
		DetectorTrainPages: *detectorTrain,
		ChaosSeed:          *chaosSeed,
		SessionBudget:      *sessionBudget,
		FetchTimeout:       *fetchTimeout,
		MaxRetries:         *retries,
		RetryBase:          *retryBase,
		RetryMax:           *retryMax,
		MinCampaignSize:    *campaignMin,
		CloakRate:          *cloakRate,
		CloakRetries:       *cloakRetries,
	}
	if *triageOn {
		opts.Triage = &triage.Options{
			CampaignThreshold: *campaignThreshold,
			TopK:              *triageTopK,
		}
	}
	if *chaosOn {
		opts.Chaos = &chaos.Profile{
			DeadRate:        *deadRate,
			StallRate:       *stallRate,
			SlowRate:        *slowRate,
			ServerErrorRate: *serrRate,
			TruncateRate:    *truncRate,
			TakedownRate:    *takedownRate,
			FlakyRate:       *flakyRate,
		}
		// Keep stall-vs-deadline separation sane at synthetic timescale:
		// a stalling site must outlive the fetch deadline.
		if opts.FetchTimeout == 0 {
			opts.FetchTimeout = 250 * time.Millisecond
		}
	}

	// Fleet modes: the coordinator and worker loops own their whole run
	// (serving or joining the lease protocol, reporting, export) and the
	// batch machinery below never starts.
	if *coordinator || *workerMode {
		fl := fleetCLI{
			addr:        *fleetAddr,
			leaseSites:  *leaseSites,
			leaseTTL:    *leaseTTL,
			journalDir:  *journalDir,
			journalSync: *journalSync,
			resume:      *resume,
			sample:      *sample,
			out:         *out,
			statusAddr:  *statusAddr,
			progress:    *progressEvery,
			workerName:  *workerName,
		}
		if *coordinator {
			runCoordinator(opts, fl)
		} else {
			runWorkerMode(opts, fl)
		}
		return
	}

	// Progress plumbing starts before the (slow) pipeline build so the
	// status endpoint answers from the first second of a run; the total is
	// filled in once the feed exists.
	var mon *farm.Monitor
	if *statusAddr != "" || *progressEvery > 0 {
		mon = farm.NewMonitor()
	}
	if *statusAddr != "" {
		srv, addr, err := startStatus(*statusAddr, mon)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("Status: serving live progress on http://%s/status\n", addr)
	}
	if *progressEvery > 0 {
		defer startProgressLog(mon, *progressEvery)()
	}

	fmt.Printf("Building pipeline (%d sites, seed %d)...\n", *numSites, *seed)
	p, err := core.NewPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}
	p.Monitor = mon
	total := len(p.Feed.URLs())
	if *sample > 0 && *sample < total {
		total = *sample
	}
	mon.SetTotal(total)
	if p.Injector != nil {
		fmt.Printf("Chaos: injecting faults over %.0f%% of sites (seed %d)\n",
			p.Injector.Profile.FaultRate()*100, p.Injector.Seed)
	}
	fmt.Printf("Corpus: %d sites in %d campaigns. Crawling with %d workers...\n",
		len(p.Corpus.Sites), p.Corpus.Campaigns, *workers)
	if p.Triage != nil {
		f := p.Triage.Funnel()
		fmt.Printf("Triage: %d URLs -> %d cut, %d attributed to %d campaigns, %d full sessions\n",
			f.Total, f.Cut, f.Attributed, p.Triage.Campaigns, f.Full)
	}
	if opts.CloakRate > 0 {
		cloaked := 0
		for _, s := range p.Corpus.Sites {
			if s.Cloak != nil {
				cloaked++
			}
		}
		fmt.Printf("Cloak: %d of %d sites cloaked (rate %g, retries %d)\n",
			cloaked, len(p.Corpus.Sites), opts.CloakRate, opts.CloakRetries)
	}

	var (
		logs  []*crawler.SessionLog
		stats farm.Stats
	)
	if *journalDir != "" {
		logs, stats = crawlJournaled(p, *journalDir, *sample, *resume, *compact, *journalSync)
	} else {
		if *sample > 0 {
			p.CrawlSample(*sample)
		} else {
			p.Crawl()
		}
		logs, stats = p.Logs, p.Stats
	}

	printRunReport(logs, stats)
	exportLogs(*out, logs)

	if *memProfile != "" {
		//phishvet:ignore atomicwrite: pprof needs an open stream; a torn profile from a crash is discarded, not analyzed
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}

// printRunReport prints the crawl summary every mode shares — batch,
// journaled, and fleet-coordinator runs all end in exactly this report, so
// the fleet determinism pin can compare their output blocks directly:
// outcome counts, page/field totals, the failure taxonomy, and the
// per-stage latency table.
func printRunReport(logs []*crawler.SessionLog, stats farm.Stats) {
	fmt.Printf("\nCrawled %d sites in %s (%.0f sites/day extrapolated; paper: >1,000/day)\n",
		stats.Sites, stats.Elapsed.Round(1e6), stats.SitesPerDay())
	var outcomes []string
	for o := range stats.Outcomes {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		fmt.Printf("  %-12s %d\n", o, stats.Outcomes[o])
	}

	pages, fields := 0, 0
	for _, l := range logs {
		if l == nil {
			continue
		}
		pages += len(l.Pages)
		for _, pg := range l.Pages {
			fields += len(pg.Fields)
		}
	}
	fmt.Printf("Pages visited: %d; input fields identified and filled: %d\n", pages, fields)

	fmt.Printf("\n%s", report.FailureTable(analysis.FailureTaxonomy(logs), stats))

	if t := report.TriageTable(logs); t != "" {
		fmt.Printf("\n%s", t)
	}

	if t := report.CloakTable(logs, stats); t != "" {
		fmt.Printf("\n%s", t)
	}

	if len(stats.Stages) > 0 {
		fmt.Printf("\nPer-stage timing (aggregated across workers):\n%s", metrics.StageTable(stats.Stages))
	}
}

// exportLogs writes the session logs to path as JSON Lines ("" = no
// export).
func exportLogs(path string, logs []*crawler.SessionLog) {
	if path == "" {
		return
	}
	if err := sessionio.WriteFile(path, logs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session logs written to %s\n", path)
}

// crawlJournaled runs the crash-safe crawl path: sessions stream into the
// journal as they complete, an interrupted journal resumes, and the
// returned logs/stats are the merged view across every run the journal
// has seen. Outcome statistics AND stage latency histograms are recomputed
// from the journaled sessions themselves (exact even when an earlier run
// was SIGKILLed before writing its stats record — each session log carries
// its trace); only elapsed time and panic counts, which no session log can
// carry, merge from the per-run stats records.
func crawlJournaled(p *core.Pipeline, dir string, sample int, resume, compact bool, syncPolicy string) ([]*crawler.SessionLog, farm.Stats) {
	policy, err := parseSyncPolicy(syncPolicy)
	if err != nil {
		log.Fatal(err)
	}
	j, err := journal.Open(dir, journal.Options{Sync: policy})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := j.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	if n := j.CompletedCount(); n > 0 && !resume {
		log.Fatalf("journal %s already holds %d sessions; pass -resume to continue it or point -journal at a fresh directory", dir, n)
	}
	skipped, err := p.CrawlJournal(j, sample)
	if err != nil {
		log.Fatal(err)
	}
	if resume {
		fmt.Printf("Journal: resumed %s — %d URLs already complete, crawled %d\n", dir, skipped, p.Stats.Sites)
	} else {
		fmt.Printf("Journal: %d sessions journaled to %s\n", p.Stats.Sites, dir)
	}
	if compact {
		dropped, err := j.Compact()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Journal: compaction dropped %d superseded records\n", dropped)
	}

	logs, err := j.Sessions()
	if err != nil {
		log.Fatal(err)
	}
	runs, err := j.StatsRuns()
	if err != nil {
		log.Fatal(err)
	}
	stats := farm.Tally(logs)
	var runLevel farm.Stats
	for _, r := range runs {
		runLevel.Merge(r)
	}
	// Stages stay the Tally-derived view. Overwriting them with (or merging
	// in) the journaled per-run records would drop killed runs' sessions and
	// double-count the rest — the stats records carry the very histograms
	// Tally just rebuilt from the same sessions.
	stats.Elapsed = runLevel.Elapsed
	stats.Panics = runLevel.Panics
	return logs, stats
}
