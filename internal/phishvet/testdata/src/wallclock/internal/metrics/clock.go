// Package metrics mimics the production clock seam. The wallclock rule
// exempts exactly one file — internal/metrics/clock.go — so the read
// below produces no finding, while hist.go in this same package is
// checked like any other seeded code.
package metrics

import "time"

// Now is the sanctioned wall-clock read.
func Now() time.Time { return time.Now() }
