// Package ocr recognizes text in raster images, standing in for the
// Tesseract engine in Section 4.1 of the paper. The crawler uses it to read
// labels that exist only in the page's visual rendering — most importantly
// the background-image trick of Figure 3, where field names are painted into
// an image and the DOM contains anonymous input boxes.
//
// The recognizer segments dark-on-light text into lines and glyph cells and
// matches each cell against the system font by Hamming distance, tolerating
// a configurable amount of pixel noise. Like a real OCR engine it can
// misread noisy glyphs, return partial results, and costs measurably more
// than DOM analysis (which is why the crawler only falls back to it).
//
// Binarization is exposed as the Mask type so repeat recognitions over the
// same unchanged screenshot share one thresholding pass; the convenience
// methods taking an Image build (and pool-recycle) a transient mask per
// call.
package ocr

import (
	"math/bits"
	"strings"
	"sync"

	"repro/internal/raster"
)

// Result is one recognized line of text with its bounding box.
type Result struct {
	Text string
	Box  raster.Rect
	// Confidence is the mean per-glyph match quality in [0, 1].
	Confidence float64
}

// Engine recognizes text. The zero value uses sensible defaults.
type Engine struct {
	// MaxGlyphNoise is the number of mismatched pixels tolerated per glyph
	// before the glyph is rejected. Default 4 (of 35 pixels).
	MaxGlyphNoise int
	// MinConfidence drops whole lines whose mean glyph quality is below the
	// threshold. Default 0.5.
	MinConfidence float64
}

// New returns an Engine with default tolerances.
func New() *Engine {
	return &Engine{MaxGlyphNoise: 4, MinConfidence: 0.5}
}

func (e *Engine) maxNoise() int {
	if e.MaxGlyphNoise > 0 {
		return e.MaxGlyphNoise
	}
	return 4
}

func (e *Engine) minConf() float64 {
	if e.MinConfidence > 0 {
		return e.MinConfidence
	}
	return 0.5
}

// RecognizeRegion extracts all text lines inside the given region of img.
// Boxes are reported in img coordinates.
func (e *Engine) RecognizeRegion(img *raster.Image, region raster.Rect) []Result {
	m := NewMaskRegion(img, region)
	out := e.RecognizeMask(m, m.Region)
	m.Release()
	return out
}

// Recognize extracts all text lines in img.
func (e *Engine) Recognize(img *raster.Image) []Result {
	m := NewMask(img)
	out := e.RecognizeMask(m, m.Region)
	m.Release()
	return out
}

// RecognizeMask extracts all text lines inside region using a prebuilt
// ink mask — the batch entry point for callers recognizing several regions
// of the same screenshot. Boxes are reported in image coordinates.
func (e *Engine) RecognizeMask(m *Mask, region raster.Rect) []Result {
	region = region.Intersect(m.Region)
	if region.Empty() {
		return nil
	}
	s := ocrScratchPool.Get().(*ocrScratch)
	var out []Result
	for _, band := range horizontalBands(m, region, s) {
		if band.h < raster.GlyphH {
			continue
		}
		for _, seg := range lineSegments(m, region, band, s) {
			text, conf := e.readSegment(m, seg)
			text = strings.TrimSpace(text)
			if text == "" || conf < e.minConf() {
				continue
			}
			out = append(out, Result{
				Text:       text,
				Box:        raster.R(seg.x, band.y, seg.w, band.h),
				Confidence: conf,
			})
		}
	}
	ocrScratchPool.Put(s)
	return out
}

// Text returns all recognized text in img joined by newlines.
func (e *Engine) Text(img *raster.Image) string {
	return joinLines(e.Recognize(img))
}

// TextMask returns all recognized text in the mask's region joined by
// newlines.
func (e *Engine) TextMask(m *Mask) string {
	return joinLines(e.RecognizeMask(m, m.Region))
}

func joinLines(rs []Result) string {
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = r.Text
	}
	return strings.Join(lines, "\n")
}

// textNearRegions are the two areas the paper's crawler searches for
// input-field labels (Section 4.1 step 3): above and to the left of the
// field box, up to dist pixels away.
func textNearRegions(box raster.Rect, dist int) [2]raster.Rect {
	return [2]raster.Rect{
		// Above: full width of the box plus margins, dist tall.
		raster.R(box.X-dist/2, box.Y-dist, box.W+dist, dist),
		// Left: dist wide, box height plus margin.
		raster.R(box.X-dist, box.Y-2, dist, box.H+4),
	}
}

// TextNear returns the text found to the left of and above the given box,
// up to dist pixels away. Each search region is binarized on the fly; use
// TextNearMask with a cached page mask when reading labels for several
// boxes of the same screenshot.
func (e *Engine) TextNear(img *raster.Image, box raster.Rect, dist int) string {
	var parts []string
	for _, region := range textNearRegions(box, dist) {
		m := NewMaskRegion(img, region)
		for _, r := range e.RecognizeMask(m, m.Region) {
			parts = append(parts, r.Text)
		}
		m.Release()
	}
	return strings.Join(parts, " ")
}

// TextNearMask is TextNear against a prebuilt ink mask.
func (e *Engine) TextNearMask(m *Mask, box raster.Rect, dist int) string {
	var parts []string
	for _, region := range textNearRegions(box, dist) {
		for _, r := range e.RecognizeMask(m, region) {
			parts = append(parts, r.Text)
		}
	}
	return strings.Join(parts, " ")
}

// ocrScratch holds the per-call row/column flag buffers and band/segment
// lists, recycled through a pool so recognition does not allocate them per
// region.
type ocrScratch struct {
	rows  []bool
	cols  []bool
	bands []band
	segs  []segment
}

var ocrScratchPool = sync.Pool{New: func() any { return new(ocrScratch) }}

func boolBuf(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

type band struct{ y, h int }

// horizontalBands finds maximal runs of rows inside region containing at
// least one ink pixel. Band coordinates are absolute.
func horizontalBands(m *Mask, region raster.Rect, s *ocrScratch) []band {
	rowHasInk := boolBuf(&s.rows, region.H)
	for y := 0; y < region.H; y++ {
		for _, on := range m.row(region, region.Y+y) {
			if on {
				rowHasInk[y] = true
				break
			}
		}
	}
	bands := s.bands[:0]
	y := 0
	for y < region.H {
		if !rowHasInk[y] {
			y++
			continue
		}
		start := y
		for y < region.H && rowHasInk[y] {
			y++
		}
		bands = append(bands, band{region.Y + start, y - start})
	}
	s.bands = bands
	return bands
}

type segment struct {
	x, w   int
	y, h   int
	gapMap map[int]bool // columns within the segment that are word gaps
}

// lineSegments splits a band into word-level segments separated by wide
// horizontal gaps, and records intra-segment word gaps. Coordinates are
// absolute.
func lineSegments(m *Mask, region raster.Rect, b band, s *ocrScratch) []segment {
	colHasInk := boolBuf(&s.cols, region.W)
	for dy := 0; dy < b.h; dy++ {
		for x, on := range m.row(raster.R(region.X, b.y, region.W, b.h), b.y+dy) {
			if on {
				colHasInk[x] = true
			}
		}
	}
	// A gap wider than 3 glyph advances splits segments (separate labels);
	// narrower gaps over 1 advance are word boundaries within a segment.
	const segGap = raster.AdvanceX * 3
	segs := s.segs[:0]
	x := 0
	for x < region.W {
		if !colHasInk[x] {
			x++
			continue
		}
		start := x
		gapStart := -1
		var gaps map[int]bool
		for x < region.W {
			if colHasInk[x] {
				if gapStart >= 0 {
					gapW := x - gapStart
					if gapW >= segGap {
						break
					}
					if gapW >= raster.AdvanceX {
						if gaps == nil {
							gaps = map[int]bool{}
						}
						for g := gapStart; g < x; g++ {
							gaps[region.X+g] = true
						}
					}
					gapStart = -1
				}
				x++
				continue
			}
			if gapStart < 0 {
				gapStart = x
			}
			x++
		}
		end := x
		if gapStart >= 0 {
			end = gapStart
		}
		segs = append(segs, segment{x: region.X + start, w: end - start, y: b.y, h: b.h, gapMap: gaps})
		if gapStart >= 0 {
			x = gapStart
		}
	}
	s.segs = segs
	return segs
}

// readSegment walks a segment left to right in glyph-cell steps, matching
// each cell against the font.
func (e *Engine) readSegment(m *Mask, seg segment) (string, float64) {
	var b strings.Builder
	var totalQ float64
	var nGlyphs int
	x := seg.x
	end := seg.x + seg.w
	pendingSpace := false
	for x+raster.GlyphW <= end+1 {
		if seg.gapMap[x] {
			pendingSpace = true
			x++
			continue
		}
		// Extract the 5x7 cell anchored at (x, seg.y). Glyphs with blank
		// leading columns (such as '1') make the first ink column fall to
		// the right of the true glyph origin, so try anchoring the cell up
		// to two pixels earlier and keep the best alignment.
		bestR, bestDist, bestAnchor := rune(0), raster.GlyphW*raster.GlyphH+1, x
		for dx := 0; dx <= 2; dx++ {
			cell := extractCell(m, x-dx, seg.y, seg.h)
			if cell == 0 {
				continue
			}
			r, dist := matchGlyph(cell)
			if dist < bestDist {
				bestR, bestDist, bestAnchor = r, dist, x-dx
			}
		}
		if bestR == 0 {
			x++
			continue
		}
		if bestDist > e.maxNoise() {
			// Unrecognizable: advance one pixel hoping to re-synchronize.
			x++
			continue
		}
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
		b.WriteRune(bestR)
		totalQ += 1 - float64(bestDist)/float64(raster.GlyphW*raster.GlyphH)
		nGlyphs++
		x = bestAnchor + raster.AdvanceX
	}
	if nGlyphs == 0 {
		return "", 0
	}
	return b.String(), totalQ / float64(nGlyphs)
}

// extractCell reads a GlyphW x GlyphH window at absolute (x, y) into a
// bit-packed cell (bit gy*GlyphW+gx). Bands taller than GlyphH anchor the
// window at the band top; trailing rows are ignored. Pixels outside the
// mask's region read as blank. GlyphW*GlyphH (35) bits fit one uint64, so
// glyph matching is XOR + popcount instead of a per-pixel comparison loop.
func extractCell(m *Mask, x, y, h int) uint64 {
	var cell uint64
	for gy := 0; gy < raster.GlyphH && gy < h; gy++ {
		for gx := 0; gx < raster.GlyphW; gx++ {
			if m.At(x+gx, y+gy) {
				cell |= 1 << uint(gy*raster.GlyphW+gx)
			}
		}
	}
	return cell
}

// glyphTable caches the font as bit-packed bitmaps for matching.
var glyphTable = buildGlyphTable()

type glyphEntry struct {
	r    rune
	bits uint64
}

func buildGlyphTable() []glyphEntry {
	var out []glyphEntry
	for _, r := range raster.GlyphRunes() {
		g, _ := raster.Glyph(r)
		var packed uint64
		for y := 0; y < raster.GlyphH; y++ {
			for x := 0; x < raster.GlyphW; x++ {
				if g[y][x] == 'X' {
					packed |= 1 << uint(y*raster.GlyphW+x)
				}
			}
		}
		out = append(out, glyphEntry{r, packed})
	}
	return out
}

// matchGlyph returns the best-matching rune and its Hamming distance.
func matchGlyph(cell uint64) (rune, int) {
	best := rune(0)
	bestDist := raster.GlyphW*raster.GlyphH + 1
	for _, g := range glyphTable {
		if d := bits.OnesCount64(cell ^ g.bits); d < bestDist {
			best, bestDist = g.r, d
		}
	}
	return best, bestDist
}
