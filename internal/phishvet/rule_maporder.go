package phishvet

import (
	"go/ast"
	"go/types"
)

// maporderRule flags `for … range` over a map whose body performs work
// that observes iteration order — exactly the bug class PR 3 had to hunt
// by hand (unsorted GlyphRunes, unsorted form keys) before kill-and-resume
// runs became byte-identical.
//
// Order-insensitive accumulation passes: writing into another map,
// counters (`total += v`), `delete`. The sanctioned emission idiom passes
// too: collecting keys or values into a slice that the enclosing code
// sorts (`keys = append(keys, k)` … `sort.Strings(keys)`). What gets
// flagged is everything whose effect depends on which element comes first:
//
//   - a call executed for its side effects (a statement-position call:
//     fmt.Fprintf into a report, Write into a hasher, AddCookie into a
//     request),
//   - a channel send,
//   - defer/go launched per element,
//   - appending to a slice that is never sorted.
//
// Function literals defined in the body but not invoked there are not
// entered: storing a closure per key is order-free.
func maporderRule() Rule {
	return Rule{
		Name: "maporder",
		Doc:  "map iteration feeding output/hashing without sorted keys",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				sorted := sortedObjects(p, f)
				flagged := map[ast.Node]bool{}
				ast.Inspect(f, func(n ast.Node) bool {
					rng, ok := n.(*ast.RangeStmt)
					if !ok || !rangesOverMap(p, rng) {
						return true
					}
					checkMapRangeBody(p, rng, sorted, flagged)
					return true
				})
			}
		},
	}
}

func rangesOverMap(p *Pass, rng *ast.RangeStmt) bool {
	tv, ok := p.Pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody reports each order-observing statement in the range
// body once (flagged dedupes statements nested map ranges would visit
// twice).
func checkMapRangeBody(p *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool, flagged map[ast.Node]bool) {
	report := func(n ast.Node, format string, args ...any) {
		if !flagged[n] {
			flagged[n] = true
			p.Reportf(n.Pos(), format, args...)
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			call, ok := ast.Unparen(s.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.isBuiltin(call, "delete") || p.isBuiltin(call, "panic") {
				return true
			}
			name := calleeName(call)
			if name == "" {
				name = "function"
			}
			report(s, "%s called for effect in map-iteration order: iterate sorted keys so output/hash bytes are reproducible", name)
			return true
		case *ast.SendStmt:
			report(s, "channel send in map-iteration order: receivers see a random element order; iterate sorted keys")
			return true
		case *ast.DeferStmt:
			report(s, "defer scheduled in map-iteration order runs in a random order: iterate sorted keys")
			return true
		case *ast.GoStmt:
			report(s, "goroutines launched in map-iteration order: iterate sorted keys so downstream ordering is reproducible")
			return true
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !p.isBuiltin(call, "append") {
					continue
				}
				for _, lhs := range s.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue // index/field targets are map-style accumulation
					}
					obj := objectOf(p, id)
					if obj != nil && !sorted[obj] {
						report(s, "%s accumulates in map-iteration order and is never sorted here: sort it (or collect-and-sort keys) before emission", id.Name)
					}
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(rng.Body, walk)
}

// sortOrderers maps package path -> function names that impose an order on
// a slice argument.
var sortOrderers = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedObjects collects every object that appears inside an argument of a
// sort.*/slices.Sort* call anywhere in the file. Object identity keeps
// this precise across functions, so searching the whole file is safe and
// handles the collect-then-sort idiom wherever the sort lands.
func sortedObjects(p *Pass, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name := p.calleePkgFunc(call)
		if fns, ok := sortOrderers[path]; !ok || !fns[name] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := objectOf(p, id); obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func objectOf(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}
