package faker_test

import (
	"fmt"

	"repro/internal/faker"
	"repro/internal/fieldspec"
)

func ExampleFaker_ForType() {
	f := faker.New(1)
	card := f.ForType(fieldspec.Card)
	fmt.Println(len(card), faker.LuhnValid(card))
	// Output: 16 true
}

func ExampleLuhnValid() {
	fmt.Println(faker.LuhnValid("4111111111111111"))
	fmt.Println(faker.LuhnValid("4111111111111112"))
	// Output:
	// true
	// false
}
