package browser

import (
	"net/http"
	"reflect"
	"sort"
	"testing"
)

// cookieEchoTransport sets several cookies on the first response and
// records the Cookie header order of every subsequent request.
type cookieEchoTransport struct {
	headers *[]string
}

func (t cookieEchoTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if h := req.Header.Get("Cookie"); h != "" {
		*t.headers = append(*t.headers, h)
	}
	resp := &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{},
		Body:       http.NoBody,
		Request:    req,
	}
	resp.Header.Set("Content-Type", "text/html")
	if len(*t.headers) == 0 {
		for _, c := range []string{"zeta=1", "alpha=2", "mid=3", "beta=4"} {
			resp.Header.Add("Set-Cookie", c)
		}
	}
	return resp, nil
}

// TestCookieHeaderSorted pins the maporder fix in roundTrip: the Cookie
// header is part of the request bytes the phishing server observes, so it
// must be emitted in sorted name order, never map-iteration order.
func TestCookieHeaderSorted(t *testing.T) {
	var headers []string
	b := New(Options{Transport: cookieEchoTransport{headers: &headers}})
	if _, err := b.Navigate("http://phish.test/"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Navigate("http://phish.test/next"); err != nil {
		t.Fatal(err)
	}
	if len(headers) != 1 {
		t.Fatalf("recorded %d Cookie headers, want 1: %v", len(headers), headers)
	}
	want := "alpha=2; beta=4; mid=3; zeta=1"
	if headers[0] != want {
		t.Errorf("Cookie header = %q, want sorted %q", headers[0], want)
	}
}

// TestSessionClockDeterministic pins the wallclock fix: two identical
// sessions produce identical NetLog timestamps (a logical clock, not wall
// time), so journaled session bytes never differ between a clean run and
// a resumed one.
func TestSessionClockDeterministic(t *testing.T) {
	run := func() []NetRequest {
		b := newBrowser(testSite())
		if _, err := b.Navigate("http://phish.test/"); err != nil {
			t.Fatal(err)
		}
		return b.NetLog
	}
	a, c := run(), run()
	if !reflect.DeepEqual(a, c) {
		t.Errorf("two identical sessions diverged:\n%+v\nvs\n%+v", a, c)
	}
	times := make([]int64, len(a))
	for i, r := range a {
		if r.Time.IsZero() {
			t.Errorf("NetLog[%d].Time is zero", i)
		}
		times[i] = r.Time.UnixNano()
	}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		t.Errorf("logical clock not monotonic: %v", times)
	}
}
