package metrics

import "time"

// Fixed-bucket streaming latency histogram. Every StageTimings collector
// counts each observation into one of NumHistBuckets duration buckets with
// geometric (power-of-two millisecond) upper bounds; percentiles are read
// back as the upper bound of the bucket where the cumulative count crosses
// the requested rank. The representation was chosen for the crawl farm's
// constraints:
//
//   - streaming: one atomic add per observation, no retained samples, so a
//     weeks-long crawl's memory cost is constant;
//   - lossless merge: merging two histograms is element-wise bucket
//     addition, so per-worker collectors, resumed runs, and journal stats
//     records combine without approximation error — merge order cannot
//     change a percentile (associative and commutative);
//   - deterministic: bucket assignment is a pure function of the duration,
//     so two runs observing the same durations report identical
//     percentiles byte for byte.

// NumHistBuckets is the fixed bucket count. Bucket i covers durations in
// (HistBucketBound(i-1), HistBucketBound(i)]; the last bucket additionally
// absorbs everything beyond its bound.
const NumHistBuckets = 28

// HistBucketBound returns the inclusive upper bound of bucket i:
// 1ms << i, so the buckets span 1ms to ~37h (1ms<<27) — wider than any
// plausible stage duration at either synthetic or production timescale.
func HistBucketBound(i int) time.Duration {
	if i < 0 {
		return 0
	}
	if i >= NumHistBuckets {
		i = NumHistBuckets - 1
	}
	return time.Millisecond << i
}

// histBucket returns the bucket index for duration d.
func histBucket(d time.Duration) int {
	for i := 0; i < NumHistBuckets; i++ {
		if d <= time.Millisecond<<i {
			return i
		}
	}
	return NumHistBuckets - 1
}

// histQuantile reads quantile q (in [0,1]) from bucket counts: the upper
// bound of the bucket where the cumulative count first reaches rank
// ceil(q*total). An empty histogram reports 0. Short bucket slices (from
// records written before the histogram existed, or truncated by
// compaction) are read as-is.
func histQuantile(buckets []int64, q float64) time.Duration {
	var total int64
	for _, n := range buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			return HistBucketBound(i)
		}
	}
	return HistBucketBound(len(buckets) - 1)
}

// mergeHistBuckets adds b into a element-wise, growing a as needed. Either
// side may be nil or shorter than NumHistBuckets (old journal records
// carry no buckets); the result is always the lossless sum.
func mergeHistBuckets(a, b []int64) []int64 {
	if len(b) == 0 {
		return a
	}
	if len(a) < len(b) {
		grown := make([]int64, len(b))
		copy(grown, a)
		a = grown
	}
	for i, n := range b {
		a[i] += n
	}
	return a
}
