package metrics

import (
	"testing"
	"time"
)

func TestStopwatchElapsed(t *testing.T) {
	sw := NewStopwatch()
	time.Sleep(5 * time.Millisecond)
	if e := sw.Elapsed(); e < 5*time.Millisecond {
		t.Errorf("Elapsed() = %v, want >= 5ms", e)
	}
}

func TestNowAdvances(t *testing.T) {
	a := Now()
	if a.IsZero() {
		t.Fatal("Now() returned the zero time")
	}
	time.Sleep(time.Millisecond)
	if b := Now(); !b.After(a) {
		t.Errorf("Now() did not advance: %v then %v", a, b)
	}
}
