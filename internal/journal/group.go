// Group commit: the SyncGroup policy batches concurrent appends so a whole
// burst of finished sessions reaches stable storage with a single fsync.
//
// Appenders marshal their payloads in their own goroutines, enqueue, and
// block; a background commit loop drains everything queued while the
// previous fsync was in flight, writes the batch with one write call,
// fsyncs once, and only then releases every waiter. Each caller therefore
// keeps the SyncAlways guarantee — when AppendSession returns nil, the
// record is durable — while a 30-worker farm pays ~1/30th of the fsyncs.
// A crash can only lose records whose appends had not yet returned (at
// most one per concurrent appender), and a resumed run re-crawls exactly
// those URLs.

package journal

import "fmt"

// groupReq is one append waiting on a group commit.
type groupReq struct {
	kind    Kind
	payload []byte
	url     string // session SeedURL; "" for non-session records
	seq     uint64 // assigned during commit
	done    chan error
}

// appendGroup enqueues one record for the commit loop and blocks until the
// batch containing it is durable (or failed as a whole).
func (j *Journal) appendGroup(kind Kind, payload []byte, url string) error {
	if len(payload) > MaxRecordBytes-bodyMinSize {
		return fmt.Errorf("journal: record of %d bytes exceeds limit", len(payload))
	}
	req := &groupReq{kind: kind, payload: payload, url: url, done: make(chan error, 1)}
	j.mu.Lock()
	if j.closed || j.stopping {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	j.pending = append(j.pending, req)
	j.groupCond.Signal()
	j.mu.Unlock()
	return <-req.done
}

// commitLoop is the background committer, started by Open under SyncGroup
// and stopped by Close. It exits only once the queue is drained, so every
// append accepted before Close set stopping is still committed.
func (j *Journal) commitLoop() {
	for {
		//phishvet:ignore locknoblock: group commit by design — the batch write+fsync happens under j.mu so appenders queue behind exactly one fsync
		j.mu.Lock()
		for len(j.pending) == 0 && !j.stopping {
			j.groupCond.Wait()
		}
		if len(j.pending) == 0 {
			j.mu.Unlock()
			close(j.loopDone)
			return
		}
		batch := j.pending
		j.pending = nil
		err := j.commitBatchLocked(batch)
		j.mu.Unlock()
		for _, r := range batch {
			r.done <- err
		}
	}
}

// flushPendingLocked commits any queued appends in the caller's goroutine
// (Sync and Close use it; the commit loop tolerates waking to an already
// drained queue). The waiters are released before returning.
func (j *Journal) flushPendingLocked() error {
	if len(j.pending) == 0 {
		return nil
	}
	batch := j.pending
	j.pending = nil
	err := j.commitBatchLocked(batch)
	for _, r := range batch {
		r.done <- err
	}
	return err
}

// commitBatchLocked writes the batch in arrival order — one frame-packed
// write per segment stretch, segment rolls in between where needed — then
// makes it durable with a single fsync before exposing any of its URLs as
// completed. A write or fsync failure fails the whole batch: none of its
// records are marked completed (whatever reached the disk is deduplicated
// at read time by sequence number), and every waiter sees the error, which
// stops the run.
func (j *Journal) commitBatchLocked(batch []*groupReq) error {
	buf := j.groupBuf[:0]
	defer func() { j.groupBuf = buf[:0] }()
	frames := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := j.active.Write(buf); err != nil {
			return fmt.Errorf("journal: append: %w", err)
		}
		j.activeSize += int64(len(buf))
		j.unsynced += frames
		buf, frames = buf[:0], 0
		return nil
	}
	for _, r := range batch {
		frame := encodeFrame(Record{Seq: j.nextSeq, Kind: r.kind, Payload: r.payload})
		if pos := j.activeSize + int64(len(buf)); pos > 0 && pos+int64(len(frame)) > int64(j.opts.SegmentBytes) {
			if err := flush(); err != nil {
				return err
			}
			if err := j.rollLocked(); err != nil {
				return err
			}
		}
		r.seq = j.nextSeq
		j.nextSeq++
		buf = append(buf, frame...)
		frames++
	}
	if err := flush(); err != nil {
		return err
	}
	if err := j.syncActiveLocked(); err != nil {
		return err
	}
	// The batch is durable: expose completions and advance the checkpoint
	// cadence.
	for _, r := range batch {
		if r.kind == KindSession && r.url != "" {
			j.completed[r.url] = r.seq
			j.dirtyCkpt++
		}
	}
	if j.dirtyCkpt >= j.opts.CheckpointEvery {
		return j.writeCheckpointLocked()
	}
	return nil
}
