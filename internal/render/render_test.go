package render

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/ocr"
	"repro/internal/raster"
)

func TestRenderTextVisible(t *testing.T) {
	doc := dom.Parse(`<body><div>WELCOME BACK</div></body>`)
	p := Render(doc, 400, nil)
	got := ocr.New().Text(p.Screenshot)
	if !strings.Contains(got, "WELCOME BACK") {
		t.Errorf("screenshot text = %q, want WELCOME BACK", got)
	}
}

func TestRenderInputBoxChrome(t *testing.T) {
	doc := dom.Parse(`<body><input id="i" placeholder="Email"></body>`)
	p := Render(doc, 400, nil)
	box, _ := p.Layout.Box(doc.ElementByID("i"))
	// Outline pixels present at box corners.
	if p.Screenshot.At(box.X, box.Y) != raster.Gray {
		t.Errorf("input outline missing at %v", box)
	}
	// Placeholder text appears in gray inside the box.
	found := false
	for y := box.Y; y < box.Y+box.H; y++ {
		for x := box.X; x < box.X+box.W; x++ {
			if p.Screenshot.At(x, y) == raster.Gray && x > box.X && y > box.Y {
				found = true
			}
		}
	}
	if !found {
		t.Error("placeholder not painted")
	}
}

func TestRenderInputValueAndPasswordMask(t *testing.T) {
	doc := dom.Parse(`<body><input id="u" value="alice"><input id="p" type="password" value="secret"></body>`)
	p := Render(doc, 500, nil)
	ub, _ := p.Layout.Box(doc.ElementByID("u"))
	texts := ocr.New().RecognizeRegion(p.Screenshot, ub)
	if len(texts) == 0 || !strings.Contains(texts[0].Text, "ALICE") {
		t.Errorf("value not painted: %+v", texts)
	}
	pb, _ := p.Layout.Box(doc.ElementByID("p"))
	ptexts := ocr.New().RecognizeRegion(p.Screenshot, pb)
	for _, r := range ptexts {
		if strings.Contains(r.Text, "SECRET") {
			t.Error("password painted in clear text")
		}
	}
}

func TestRenderButtonLabel(t *testing.T) {
	doc := dom.Parse(`<body><button>NEXT</button></body>`)
	p := Render(doc, 400, nil)
	got := ocr.New().Text(p.Screenshot)
	if !strings.Contains(got, "NEXT") {
		t.Errorf("button label missing from screenshot: %q", got)
	}
}

func TestRenderHiddenExcluded(t *testing.T) {
	doc := dom.Parse(`<body><div style="display:none">SECRETTEXT</div><div>SHOWN</div></body>`)
	p := Render(doc, 400, nil)
	got := ocr.New().Text(p.Screenshot)
	if strings.Contains(got, "SECRETTEXT") {
		t.Error("display:none content painted")
	}
	if !strings.Contains(got, "SHOWN") {
		t.Errorf("visible content missing: %q", got)
	}
}

func TestRenderBackgroundImageCarriesText(t *testing.T) {
	// The Figure 3 evasion: the label exists only in the background image.
	bg := raster.New(300, 60, raster.White)
	bg.DrawString("CARD NUMBER", 4, 40, raster.Black) // below the input row
	resolve := func(url string) *raster.Image {
		if url == "/bg.pxi" {
			return bg
		}
		return nil
	}
	doc := dom.Parse(`<body><div id="wrap" style="background-image:url(/bg.pxi); height: 60px"><input id="i" name="fld1"></div></body>`)
	p := Render(doc, 400, resolve)
	got := ocr.New().Text(p.Screenshot)
	if !strings.Contains(got, "CARD NUMBER") {
		t.Errorf("background image text not composited: %q", got)
	}
	// And the DOM genuinely does not contain the label.
	if strings.Contains(strings.ToUpper(dom.Render(doc)), "CARD NUMBER") {
		t.Error("test invalid: label leaked into DOM")
	}
}

func TestRenderImgPlaceholderWhenUnresolvable(t *testing.T) {
	doc := dom.Parse(`<body><img id="m" src="/missing.pxi" width="40" height="20"></body>`)
	p := Render(doc, 400, nil)
	box, _ := p.Layout.Box(doc.ElementByID("m"))
	if p.Screenshot.At(box.CenterX(), box.CenterY()) != raster.LightGray {
		t.Error("missing image should paint a placeholder")
	}
}

func TestRenderImgBlitsResolvedImage(t *testing.T) {
	logo := raster.New(40, 20, raster.Red)
	resolve := func(url string) *raster.Image {
		if url == "/logo.pxi" {
			return logo
		}
		return nil
	}
	doc := dom.Parse(`<body><img id="m" src="/logo.pxi" width="40" height="20"></body>`)
	p := Render(doc, 400, resolve)
	box, _ := p.Layout.Box(doc.ElementByID("m"))
	if p.Screenshot.At(box.X+5, box.Y+5) != raster.Red {
		t.Error("resolved image not blitted")
	}
}

func TestRenderCanvasTrickVisibleOnlyInRaster(t *testing.T) {
	// A canvas styled as a submit button: visually a button, but DOM
	// analysis finds no button/input element.
	doc := dom.Parse(`<body><canvas id="c" data-label="SUBMIT" width="80" height="18"></canvas></body>`)
	p := Render(doc, 400, nil)
	got := ocr.New().Text(p.Screenshot)
	if !strings.Contains(got, "SUBMIT") {
		t.Errorf("canvas label not painted: %q", got)
	}
	if len(doc.ElementsByTag("button")) != 0 {
		t.Error("test invalid: DOM contains a real button")
	}
}

func TestRenderBackgroundColor(t *testing.T) {
	doc := dom.Parse(`<body><div id="hero" style="background-color: navy; height: 40px">X</div></body>`)
	p := Render(doc, 400, nil)
	box, _ := p.Layout.Box(doc.ElementByID("hero"))
	if p.Screenshot.At(box.X+box.W-2, box.Y+2) != raster.Navy {
		t.Error("background color not painted")
	}
}

func TestRenderSelect(t *testing.T) {
	doc := dom.Parse(`<body><select id="s"><option>ALABAMA</option><option>ALASKA</option></select></body>`)
	p := Render(doc, 400, nil)
	got := ocr.New().Text(p.Screenshot)
	if !strings.Contains(got, "ALABAMA") {
		t.Errorf("select first option not shown: %q", got)
	}
	if strings.Contains(got, "ALASKA") {
		t.Errorf("collapsed select should show only first option: %q", got)
	}
}

func TestRenderHeightClamped(t *testing.T) {
	var b strings.Builder
	b.WriteString("<body>")
	for i := 0; i < 2000; i++ {
		b.WriteString("<div>row</div>")
	}
	b.WriteString("</body>")
	doc := dom.Parse(b.String())
	p := Render(doc, 300, nil)
	if p.Screenshot.H > 4000 {
		t.Errorf("screenshot height %d exceeds clamp", p.Screenshot.H)
	}
}

func TestFullLoginPageEndToEnd(t *testing.T) {
	doc := dom.Parse(`<body>
	  <div style="background-color: navy; height: 30px"><span style="color:white">ACME BANK</span></div>
	  <form>
	    <div><label>Email address</label><input name="email"></div>
	    <div><label>Password</label><input type="password" name="pw"></div>
	    <button>LOG IN</button>
	  </form>
	</body>`)
	p := Render(doc, 500, nil)
	got := ocr.New().Text(p.Screenshot)
	for _, want := range []string{"EMAIL ADDRESS", "PASSWORD", "LOG IN"} {
		if !strings.Contains(got, want) {
			t.Errorf("screenshot missing %q; got:\n%s", want, got)
		}
	}
}

func BenchmarkRenderLoginPage(b *testing.B) {
	doc := dom.Parse(`<body><form>
	  <div><label>Email</label><input name="email"></div>
	  <div><label>Password</label><input type="password"></div>
	  <button>Sign in</button></form></body>`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Render(doc, 800, nil)
	}
}

func TestRenderAnchorStyledAsButton(t *testing.T) {
	doc := dom.Parse(`<body><a id="a" href="/x" style="background-color: navy; width: 80px; height: 18px">GO</a></body></html>`)
	p := Render(doc, 400, nil)
	box, ok := p.Layout.Box(doc.ElementByID("a"))
	if !ok {
		t.Fatal("anchor not laid out")
	}
	if p.Screenshot.At(box.X+2, box.Y+2) != raster.Navy {
		t.Error("anchor background not painted")
	}
}

func TestRenderHR(t *testing.T) {
	doc := dom.Parse(`<body><div>above</div><hr><div>below</div></body>`)
	p := Render(doc, 300, nil)
	// Some gray horizontal pixels exist between the two text rows.
	found := false
	for y := 0; y < p.Screenshot.H; y++ {
		if p.Screenshot.At(10, y) == raster.Gray {
			found = true
		}
	}
	if !found {
		t.Error("hr rule not painted")
	}
}

func TestRenderCheckbox(t *testing.T) {
	doc := dom.Parse(`<body><input id="cb" type="checkbox" name="agree"><span>I agree</span></body>`)
	p := Render(doc, 300, nil)
	box, _ := p.Layout.Box(doc.ElementByID("cb"))
	if box.W > 20 {
		t.Errorf("checkbox box too wide: %v", box)
	}
	if p.Screenshot.At(box.X, box.Y) != raster.Gray {
		t.Error("checkbox outline missing")
	}
}

func TestRenderSubmitInput(t *testing.T) {
	doc := dom.Parse(`<body><input type="submit" value="PAY NOW"></body>`)
	p := Render(doc, 400, nil)
	got := ocr.New().Text(p.Screenshot)
	if !strings.Contains(got, "PAY NOW") {
		t.Errorf("submit input label missing: %q", got)
	}
}

func TestRenderDarkButtonUsesLightText(t *testing.T) {
	doc := dom.Parse(`<body><button id="b" style="background-color: navy">Sign in</button></body>`)
	p := Render(doc, 400, nil)
	box, _ := p.Layout.Box(doc.ElementByID("b"))
	foundWhite := false
	for y := box.Y; y < box.Y+box.H; y++ {
		for x := box.X; x < box.X+box.W; x++ {
			if p.Screenshot.At(x, y) == raster.White {
				foundWhite = true
			}
		}
	}
	if !foundWhite {
		t.Error("dark button should render light label")
	}
}
