// Package journal mimics the production journal's append surface: any
// exported Append* function inside an internal/journal path is a
// detertaint sink — its payload bytes must be a pure function of the
// feed seed.
package journal

// Journal is an in-memory stand-in for the WAL.
type Journal struct{ buf []byte }

// AppendNote is the sink the fixtures write through.
func (j *Journal) AppendNote(payload []byte) error {
	j.buf = append(j.buf, payload...)
	return nil
}
