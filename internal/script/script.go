// Package script defines the declarative page-behaviour model that stands in
// for JavaScript in this system. Real phishing pages ship JS that registers
// event listeners (including keyloggers), swaps page content in place, and
// wires up non-standard submit mechanisms; here those behaviours are encoded
// as a JSON document embedded in the page inside a
// <script type="application/x-behavior"> element. The browser package parses
// the document at load time — the moment at which the paper's crawler
// records the page's addEventListener calls (Section 4.5) — and interprets
// the behaviours when the crawler types, clicks, or submits.
package script

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/dom"
)

// BehaviorType is the MIME type of behaviour script elements.
const BehaviorType = "application/x-behavior"

// Actions a listener can take when its event fires.
const (
	// ActionStore records the keystroke in page state (classic keylogger
	// buffering — the first measurement tier of Section 5.1.3).
	ActionStore = "store"
	// ActionSend issues a network request when data is entered, without the
	// data itself (second tier).
	ActionSend = "send"
	// ActionSendData issues a network request carrying the entered data
	// before any submit action (third tier: true pre-submit exfiltration).
	ActionSendData = "send-data"
)

// Listener is one addEventListener registration.
type Listener struct {
	// Target is the tag name the listener attaches to ("input", "button",
	// "document").
	Target string `json:"target"`
	// Event is the DOM event name ("keydown", "click", ...).
	Event string `json:"event"`
	// Action is what the handler does (ActionStore, ActionSend,
	// ActionSendData, or a free-form label for benign handlers).
	Action string `json:"action"`
	// Endpoint is the URL network requests go to for send actions; defaults to
	// "/k" on the page's host.
	Endpoint string `json:"endpoint,omitempty"`
}

// Swap replaces the page body when a trigger element is clicked, changing
// the page without changing the URL — the dynamic-content case the DOM hash
// of Section 4.4 exists to catch.
type Swap struct {
	// TriggerID is the id of the element whose click performs the swap.
	TriggerID string `json:"trigger"`
	// HTML is the replacement body content.
	HTML string `json:"html"`
}

// ClickZone maps a visual region to an action, modelling canvas/SVG submit
// "tricks" (Section 4.3): the pixels look like a button but no DOM button
// exists, so only coordinate-based clicking activates it.
type ClickZone struct {
	X, Y, W, H int
	// Action is "submit" (submit the form FormID) or "nav" (go to Href).
	Action string
	FormID string
	Href   string
}

// clickZoneJSON is the wire form with explicit field names.
type clickZoneJSON struct {
	X      int    `json:"x"`
	Y      int    `json:"y"`
	W      int    `json:"w"`
	H      int    `json:"h"`
	Action string `json:"action"`
	FormID string `json:"form,omitempty"`
	Href   string `json:"href,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (z ClickZone) MarshalJSON() ([]byte, error) {
	return json.Marshal(clickZoneJSON{z.X, z.Y, z.W, z.H, z.Action, z.FormID, z.Href})
}

// UnmarshalJSON implements json.Unmarshaler.
func (z *ClickZone) UnmarshalJSON(data []byte) error {
	var w clickZoneJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*z = ClickZone{w.X, w.Y, w.W, w.H, w.Action, w.FormID, w.Href}
	return nil
}

// Behavior is the full behaviour document of one page.
type Behavior struct {
	Listeners  []Listener  `json:"listeners,omitempty"`
	Swaps      []Swap      `json:"swaps,omitempty"`
	ClickZones []ClickZone `json:"clickzones,omitempty"`
}

// Empty reports whether the behaviour document declares nothing.
func (b Behavior) Empty() bool {
	return len(b.Listeners) == 0 && len(b.Swaps) == 0 && len(b.ClickZones) == 0
}

// KeyloggerTier returns the strongest keylogging behaviour declared:
// 0 none, 1 store, 2 send (request on entry), 3 send-data (data exfiltrated
// pre-submit). These are the three nested measurements of Section 5.1.3.
func (b Behavior) KeyloggerTier() int {
	tier := 0
	for _, l := range b.Listeners {
		if l.Event != "keydown" {
			continue
		}
		switch l.Action {
		case ActionStore:
			if tier < 1 {
				tier = 1
			}
		case ActionSend:
			if tier < 2 {
				tier = 2
			}
		case ActionSendData:
			tier = 3
		}
	}
	return tier
}

// SwapFor returns the swap triggered by the element id, if any.
func (b Behavior) SwapFor(id string) (Swap, bool) {
	for _, s := range b.Swaps {
		if s.TriggerID == id {
			return s, true
		}
	}
	return Swap{}, false
}

// ZoneAt returns the click zone containing (x, y), if any.
func (b Behavior) ZoneAt(x, y int) (ClickZone, bool) {
	for _, z := range b.ClickZones {
		if x >= z.X && x < z.X+z.W && y >= z.Y && y < z.Y+z.H {
			return z, true
		}
	}
	return ClickZone{}, false
}

// Marshal renders the behaviour as its embedded script element.
func (b Behavior) Marshal() (string, error) {
	data, err := json.Marshal(b)
	if err != nil {
		return "", fmt.Errorf("script: %w", err)
	}
	return fmt.Sprintf(`<script type="%s">%s</script>`, BehaviorType, data), nil
}

// Extract parses the first behaviour script element in the document. Pages
// without one get a zero Behavior, never an error.
func Extract(doc *dom.Node) (Behavior, error) {
	var b Behavior
	node := doc.FindFirst(func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.Tag == "script" &&
			strings.EqualFold(n.AttrOr("type", ""), BehaviorType)
	})
	if node == nil {
		return b, nil
	}
	raw := strings.TrimSpace(node.OwnText())
	if raw == "" {
		return b, nil
	}
	if err := json.Unmarshal([]byte(raw), &b); err != nil {
		return Behavior{}, fmt.Errorf("script: parsing behavior: %w", err)
	}
	return b, nil
}

// ExternalScripts returns the src URLs of conventional script elements —
// what DOM analysis inspects to recognize known CAPTCHA libraries
// (Section 5.3.2).
func ExternalScripts(doc *dom.Node) []string {
	var out []string
	for _, s := range doc.ElementsByTag("script") {
		if src, ok := s.Attr("src"); ok && src != "" {
			out = append(out, src)
		}
	}
	return out
}
