package vision

import (
	"sort"

	"repro/internal/raster"
)

// Proposal generation: connected components of non-background pixels with a
// small dilation radius, so glyphs merge into text lines and widget chrome
// merges into whole widgets. This plays the role of Faster R-CNN's region
// proposal network.

const (
	dilate       = 3   // merge radius in pixels
	minPropW     = 10  // discard smaller proposals
	minPropH     = 8   //
	maxProposals = 300 // safety cap for pathological pages
)

// Proposals returns candidate object regions in img, largest first.
func Proposals(img *raster.Image) []raster.Rect {
	w, h := img.W, img.H
	if w == 0 || h == 0 {
		return nil
	}
	// Downscale the problem: operate on a coarse grid of dilate-sized cells
	// marking cells containing any non-white pixel, then connected
	// components over cells. This is O(pixels) and merges features within
	// the dilation radius.
	cw := (w + dilate - 1) / dilate
	ch := (h + dilate - 1) / dilate
	occupied := make([]bool, cw*ch)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if img.At(x, y) != raster.White {
				occupied[(y/dilate)*cw+(x/dilate)] = true
			}
		}
	}
	label := make([]int, cw*ch)
	for i := range label {
		label[i] = -1
	}
	var boxes []raster.Rect
	var queue []int
	for start := 0; start < cw*ch; start++ {
		if !occupied[start] || label[start] >= 0 {
			continue
		}
		id := len(boxes)
		minX, minY, maxX, maxY := cw, ch, -1, -1
		queue = queue[:0]
		queue = append(queue, start)
		label[start] = id
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			cx, cy := cur%cw, cur/cw
			if cx < minX {
				minX = cx
			}
			if cy < minY {
				minY = cy
			}
			if cx > maxX {
				maxX = cx
			}
			if cy > maxY {
				maxY = cy
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := cx+dx, cy+dy
					if nx < 0 || ny < 0 || nx >= cw || ny >= ch {
						continue
					}
					ni := ny*cw + nx
					if occupied[ni] && label[ni] < 0 {
						label[ni] = id
						queue = append(queue, ni)
					}
				}
			}
		}
		boxes = append(boxes, raster.R(
			minX*dilate, minY*dilate,
			(maxX-minX+1)*dilate, (maxY-minY+1)*dilate,
		))
	}
	// Tighten to content, filter, and clip. Tightening removes the
	// cell-granularity margins the coarse grid introduces, so detection
	// features align with the exact-box features the detector trained on.
	var out []raster.Rect
	for _, b := range boxes {
		b = tighten(img, b.Clip(w, h))
		if b.W < minPropW || b.H < minPropH {
			continue
		}
		if b.Area() > w*h*9/10 {
			continue // whole-page blob carries no localization signal
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Area() > out[j].Area() })
	if len(out) > maxProposals {
		out = out[:maxProposals]
	}
	return out
}

// tighten shrinks box to the bounding rectangle of its non-white pixels.
func tighten(img *raster.Image, box raster.Rect) raster.Rect {
	minX, minY := box.X+box.W, box.Y+box.H
	maxX, maxY := box.X-1, box.Y-1
	for y := box.Y; y < box.Y+box.H; y++ {
		for x := box.X; x < box.X+box.W; x++ {
			if img.At(x, y) != raster.White {
				if x < minX {
					minX = x
				}
				if y < minY {
					minY = y
				}
				if x > maxX {
					maxX = x
				}
				if y > maxY {
					maxY = y
				}
			}
		}
	}
	if maxX < box.X {
		return box // no content: keep as-is
	}
	return raster.R(minX, minY, maxX-minX+1, maxY-minY+1)
}

// NonMaxSuppression removes detections that overlap a higher-scoring
// detection of the same class by more than iouThreshold.
func NonMaxSuppression(dets []Detection, iouThreshold float64) []Detection {
	sorted := append([]Detection(nil), dets...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var kept []Detection
	for _, d := range sorted {
		ok := true
		for _, k := range kept {
			if k.Class == d.Class && k.Box.IoU(d.Box) > iouThreshold {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept
}
