package crawler

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/browser"
	"repro/internal/site"
)

func TestIsBenignParkedText(t *testing.T) {
	cases := []struct {
		title, text string
		want        bool
	}{
		{"acme.test - coming soon", "", true},
		{"", "The page you are looking for is under construction.", true},
		{"Welcome", "This domain is for sale. Contact the registrar.", true},
		{"Sign in", "Enter your email address and password.", false},
		// Takedown pages are classified as takedowns, never benign-parked.
		{"Seized", "this domain is parked pending review", false},
	}
	for _, tc := range cases {
		if got := IsBenignParkedText(tc.title, tc.text); got != tc.want {
			t.Errorf("IsBenignParkedText(%q, %q) = %v, want %v", tc.title, tc.text, got, tc.want)
		}
	}
}

func TestCloakSignalsFromNetLog(t *testing.T) {
	netlog := []browser.NetRequest{
		{URL: "http://c.test/", Vary: "User-Agent, Accept-Language"},
		{URL: "http://c.test/a.pxi", Vary: "user-agent"}, // dedup, case-insensitive
		{URL: "http://c.test/b.pxi", Vary: "Referer, Cookie, X-Forwarded-For"},
		{URL: "http://c.test/c.pxi", JSChallenge: "deadbeef"},
		{URL: "http://c.test/d.pxi", Vary: "Accept-Encoding"}, // not a cloak dimension
	}
	got := cloakSignals(netlog)
	want := []string{SignalCookie, SignalGeo, SignalJS, SignalLanguage, SignalReferrer, SignalUserAgent}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("cloakSignals = %v, want %v", got, want)
	}
	if cloakSignals(nil) != nil {
		t.Error("empty netlog should yield nil signals")
	}
	if cloakSignals([]browser.NetRequest{{URL: "x", Vary: "Accept-Encoding"}}) != nil {
		t.Error("non-cloak Vary should yield nil signals")
	}
}

func TestMutationScheduleDeterministicAndExhaustible(t *testing.T) {
	const seed = 99
	run := func() []string {
		sched := newMutationSchedule(seed)
		var fps []string
		p := browser.DefaultProfile()
		for sched.mutate(&p, []string{SignalUserAgent, SignalLanguage}) {
			fps = append(fps, p.Fingerprint())
		}
		return fps
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	// Pools hold 4 candidates; indices 1..3 drain in 3 mutations, then the
	// schedule reports exhaustion.
	if len(a) != 3 {
		t.Errorf("schedule spent %d mutations, want 3", len(a))
	}
	if c := run(); fmt.Sprint(c) != fmt.Sprint(a) {
		t.Errorf("third run diverged: %v", c)
	}

	other := newMutationSchedule(seed + 1)
	p := browser.DefaultProfile()
	other.mutate(&p, []string{SignalUserAgent, SignalReferrer, SignalLanguage, SignalGeo})
	q := browser.DefaultProfile()
	sched := newMutationSchedule(seed)
	sched.mutate(&q, []string{SignalUserAgent, SignalReferrer, SignalLanguage, SignalGeo})
	if p.Fingerprint() == q.Fingerprint() {
		t.Log("adjacent seeds coincide on first mutation (possible but worth eyeballing)")
	}
}

func TestMutationScheduleBooleanDimensionsFlipOnce(t *testing.T) {
	sched := newMutationSchedule(1)
	p := browser.DefaultProfile()
	if !sched.mutate(&p, []string{SignalCookie, SignalJS}) {
		t.Fatal("first boolean mutation reported no change")
	}
	if !p.PersistCookies || !p.JSCapable {
		t.Fatalf("boolean dimensions not flipped: %+v", p)
	}
	if sched.mutate(&p, []string{SignalCookie, SignalJS}) {
		t.Error("already-flipped boolean dimensions reported another change")
	}
}

// cloakedLoginSite wraps the standard login/payment flow in a cloak gate.
func cloakedLoginSite(rules ...site.CloakRule) *site.Site {
	s := loginPaymentSite()
	s.Cloak = &site.Cloak{
		Rules:     rules,
		DecoyHTML: "<html><head><title>lp.test - coming soon</title></head><body><p>This site is coming soon; it is under construction.</p></body></html>",
	}
	return s
}

func TestCloakHonestCrawlLandsBenign(t *testing.T) {
	c := newCrawler(t, cloakedLoginSite(site.CloakRule{Kind: site.CloakUserAgent, Value: browser.UserAgents()[1]}))
	lg := c.Crawl("http://lp.test/")
	if lg.Outcome != OutcomeBenign {
		t.Fatalf("honest crawl outcome = %q, want benign", lg.Outcome)
	}
	if lg.Cloak != nil {
		t.Errorf("retries-0 crawl recorded a cloak loop: %+v", lg.Cloak)
	}
	if Retryable(lg.Outcome) {
		t.Error("benign must not be farm-retryable: the farm's retry would repeat the identical honest profile")
	}
}

func TestCloakUncloaksEveryVector(t *testing.T) {
	vectors := []struct {
		name string
		rule site.CloakRule
	}{
		{"user-agent", site.CloakRule{Kind: site.CloakUserAgent, Value: browser.UserAgents()[2]}},
		{"referrer", site.CloakRule{Kind: site.CloakReferrer, Value: browser.Referrers()[3]}},
		{"language", site.CloakRule{Kind: site.CloakLanguage, Value: browser.Languages()[2]}},
		{"geo", site.CloakRule{Kind: site.CloakGeo, Value: browser.ForwardedAddrs()[3]}},
		{"cookie", site.CloakRule{Kind: site.CloakCookie}},
		{"js", site.CloakRule{Kind: site.CloakJS}},
	}
	for _, v := range vectors {
		t.Run(v.name, func(t *testing.T) {
			c := newCrawler(t, cloakedLoginSite(v.rule))
			c.CloakRetries = 5
			lg := c.Crawl("http://lp.test/")
			if lg.Cloak == nil {
				t.Fatalf("no cloak loop recorded; outcome %q", lg.Outcome)
			}
			if !lg.Cloak.Uncloaked || lg.Outcome == OutcomeBenign {
				t.Fatalf("gate never opened: outcome %q, attempts %+v", lg.Outcome, lg.Cloak.Attempts)
			}
			first := lg.Cloak.Attempts[0]
			if first.Outcome != OutcomeBenign || len(first.Signals) == 0 {
				t.Errorf("honest attempt not recorded: %+v", first)
			}
			if len(lg.Pages) == 0 || lg.Pages[0].Title == "lp.test - coming soon" {
				t.Errorf("final log still carries the decoy: %+v", lg.Pages)
			}
		})
	}
}

func TestCloakUncloaksLayeredGate(t *testing.T) {
	c := newCrawler(t, cloakedLoginSite(
		site.CloakRule{Kind: site.CloakUserAgent, Value: browser.UserAgents()[3]},
		site.CloakRule{Kind: site.CloakLanguage, Value: browser.Languages()[3]},
		site.CloakRule{Kind: site.CloakJS},
	))
	c.CloakRetries = 5
	lg := c.Crawl("http://lp.test/")
	if lg.Cloak == nil || !lg.Cloak.Uncloaked {
		t.Fatalf("depth-3 gate never opened: %+v", lg.Cloak)
	}
	// Every dimension advances per mutation, so even the worst candidate
	// order opens a pool gate within 3 mutated attempts (4 total).
	if n := len(lg.Cloak.Attempts); n > 4 {
		t.Errorf("loop spent %d attempts, want <= 4", n)
	}
}

func TestCloakBudgetExhaustionStaysBenign(t *testing.T) {
	c := newCrawler(t, cloakedLoginSite(site.CloakRule{Kind: site.CloakUserAgent, Value: browser.UserAgents()[3]}))
	c.CloakRetries = 1
	lg := c.Crawl("http://lp.test/")
	if lg.Cloak == nil {
		t.Fatal("no cloak loop recorded")
	}
	if lg.Cloak.Uncloaked {
		// The 1-mutation budget CAN succeed when the schedule's first
		// candidate is the right one — but then the loop must have stopped.
		if len(lg.Cloak.Attempts) != 2 {
			t.Errorf("uncloaked in %d attempts with budget 1", len(lg.Cloak.Attempts))
		}
		return
	}
	if lg.Outcome != OutcomeBenign {
		t.Errorf("exhausted budget outcome = %q, want benign", lg.Outcome)
	}
	if len(lg.Cloak.Attempts) != 2 {
		t.Errorf("budget 1 spent %d attempts, want honest + 1 mutation", len(lg.Cloak.Attempts))
	}
}

func TestCloakGenuinelyParkedPageSkipsLoop(t *testing.T) {
	parked := &site.Site{
		ID: "pk", Host: "parked.test",
		Pages:  []*site.Page{{Path: "/", HTML: "<html><head><title>parked.test</title></head><body><p>This domain is for sale. Check back later.</p></body></html>"}},
		Images: map[string][]byte{},
	}
	c := newCrawler(t, parked)
	c.CloakRetries = 5
	lg := c.Crawl("http://parked.test/")
	if lg.Outcome != OutcomeBenign {
		t.Fatalf("outcome = %q, want benign", lg.Outcome)
	}
	if lg.Cloak != nil {
		t.Errorf("signal-less parked page triggered the loop: %+v", lg.Cloak)
	}
}

func TestCloakCrawlDeterministic(t *testing.T) {
	run := func() []byte {
		c := newCrawler(t, cloakedLoginSite(
			site.CloakRule{Kind: site.CloakReferrer, Value: browser.Referrers()[2]},
			site.CloakRule{Kind: site.CloakCookie},
		))
		c.CloakRetries = 5
		lg := c.Crawl("http://lp.test/")
		enc, err := json.Marshal(lg)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("two crawls of the same seed diverged:\n%s\n%s", a, b)
	}
}
