package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/fleet"
	"repro/internal/journal"
)

// fleetCLI collects the flag values the fleet modes run from.
type fleetCLI struct {
	addr        string
	leaseSites  int
	leaseTTL    time.Duration
	journalDir  string
	journalSync string
	resume      bool
	sample      int
	out         string
	statusAddr  string
	progress    time.Duration
	workerName  string
}

// fleetParams pins the deterministic universe both fleet roles must share.
// The chaos profile is fingerprinted so a coordinator running a
// fault-injected crawl refuses workers serving a healthy feed (and vice
// versa) — a mismatch would merge sessions from two different universes.
func fleetParams(opts core.Options, feedURLs int) fleet.Params {
	p := fleet.Params{
		Sites:       opts.NumSites,
		Seed:        opts.Seed,
		ChaosSeed:   opts.ChaosSeed,
		FeedURLs:    feedURLs,
		MinCampaign: opts.MinCampaignSize,
	}
	if opts.Chaos != nil {
		p.Chaos = fmt.Sprintf("%+v", *opts.Chaos)
	}
	if opts.Triage != nil {
		p.Triage = fmt.Sprintf("threshold=%g,topk=%d", opts.Triage.CampaignThreshold, opts.Triage.TopK)
	}
	if opts.CloakRate > 0 || opts.CloakRetries > 0 {
		p.Cloak = fmt.Sprintf("rate=%g,retries=%d", opts.CloakRate, opts.CloakRetries)
	}
	return p
}

// runCoordinator is phishcrawl's -coordinator mode: derive the feed (no
// model training — the coordinator never crawls), shard it into leases,
// serve the wire protocol on -fleet-addr until every lease has an accepted
// result, then merge the shard journals and print the same report a
// single-process run prints. The merged output is pinned byte-identical to
// a 1-process, 1-worker run over the same flags.
func runCoordinator(opts core.Options, fl fleetCLI) {
	corpus, feed := core.NewFeed(opts)
	urls := feed.URLs()
	params := fleetParams(opts, len(urls))
	if fl.sample > 0 && fl.sample < len(urls) {
		urls = urls[:fl.sample]
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		URLs:       urls,
		Params:     params,
		Root:       fl.journalDir,
		LeaseSites: fl.leaseSites,
		TTL:        fl.leaseTTL,
		Resume:     fl.resume,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", fl.addr)
	if err != nil {
		log.Fatalf("-fleet-addr %s: %v", fl.addr, err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	//phishvet:ignore goroleak: Serve is stopped by the deferred srv.Close on the next line; its return error is the normal ErrServerClosed
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("Corpus: %d sites in %d campaigns. Fleet: coordinating %d URLs on http://%s\n",
		len(corpus.Sites), corpus.Campaigns, len(urls), ln.Addr())
	if fl.statusAddr != "" {
		statusSrv, addr, err := startFleetStatus(fl.statusAddr, coord)
		if err != nil {
			log.Fatal(err)
		}
		defer statusSrv.Close()
		fmt.Printf("Status: serving fleet-wide progress on http://%s/status\n", addr)
	}
	if fl.progress > 0 {
		defer startFleetProgressLog(coord, fl.progress)()
	}
	<-coord.Done()
	// Merge with the server still up: late workers polling for a lease get
	// the Done response and exit cleanly while the journals are read.
	logs, stats, err := coord.Merge()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fleet: all leases complete; merged %d sessions from shard journals under %s\n",
		len(logs), fl.journalDir)
	printRunReport(logs, stats)
	exportLogs(fl.out, logs)
}

// runWorkerMode is phishcrawl's -worker mode: build the full pipeline
// (identical corpus, feed, and trained models — the process-wide model
// cache makes repeat builds cheap), then crawl leases from the coordinator
// until the feed is done, journaling each lease into its own shard
// directory under -journal.
func runWorkerMode(opts core.Options, fl fleetCLI) {
	name := fl.workerName
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	fmt.Printf("Building pipeline (%d sites, seed %d)...\n", opts.NumSites, opts.Seed)
	p, err := core.NewPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}
	params := fleetParams(opts, len(p.Feed.URLs()))
	policy, err := parseSyncPolicy(fl.journalSync)
	if err != nil {
		log.Fatal(err)
	}
	// Each lease gets a fresh monitor so heartbeat progress reports the
	// shard being crawled, not the worker's lifetime totals.
	var leaseMon atomic.Pointer[farm.Monitor]
	//phishvet:ignore detertaint: the PID-derived worker name is lease bookkeeping on the coordinator — merged journal bytes are keyed by URL and stay identical whatever the workers are called
	err = fleet.RunWorker(fleet.WorkerConfig{
		Coordinator: fl.addr,
		Name:        name,
		Params:      params,
		Root:        fl.journalDir,
		Logf:        log.Printf,
		Crawl: func(l fleet.Lease, dir string) (farm.Stats, error) {
			mon := farm.NewMonitor()
			mon.SetTotal(l.End - l.Start)
			mon.AddPreCompleted(len(l.Completed))
			leaseMon.Store(mon)
			p.Monitor = mon
			j, err := journal.Open(dir, journal.Options{Sync: policy})
			if err != nil {
				return farm.Stats{}, err
			}
			done := make(map[string]bool, len(l.Completed))
			for _, u := range l.Completed {
				done[u] = true
			}
			err = p.CrawlJournalShard(j, l.Start, l.End, done)
			if cerr := j.Close(); err == nil && cerr != nil {
				err = cerr
			}
			return p.Stats, err
		},
		Snapshot: func() fleet.Progress {
			mon := leaseMon.Load()
			if mon == nil {
				return fleet.Progress{}
			}
			pr := mon.Snapshot()
			return fleet.Progress{
				Done:       pr.Done - pr.PreCompleted,
				Retried:    pr.Retried,
				Degraded:   pr.Degraded,
				Failed:     pr.Failed,
				Panics:     pr.Panics,
				FastPathed: pr.FastPathed,
				Stages:     pr.Stages,
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
}

// startFleetStatus serves the coordinator's fleet-wide progress view at
// addr — the fleet-mode counterpart of startStatus: per-worker leases,
// URL/lease totals, ETA, and the merged per-stage latency percentiles.
func startFleetStatus(addr string, coord *fleet.Coordinator) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("-status-addr %s: %w", addr, err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	//phishvet:ignore goroleak: Serve is stopped by the caller's deferred srv.Close; its return error is the normal ErrServerClosed
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// startFleetProgressLog prints the fleet status block to stderr every
// interval, plus one final snapshot on stop.
func startFleetProgressLog(coord *fleet.Coordinator, every time.Duration) (stop func()) {
	tick := time.NewTicker(every)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-tick.C:
				fmt.Fprintln(os.Stderr, coord.Status().String())
			case <-done:
				return
			}
		}
	}()
	return func() {
		tick.Stop()
		close(done)
		<-finished
		fmt.Fprintln(os.Stderr, coord.Status().String())
	}
}

// parseSyncPolicy maps the -journal-sync flag to the journal's policy.
func parseSyncPolicy(s string) (journal.SyncPolicy, error) {
	switch s {
	case "always":
		return journal.SyncAlways, nil
	case "group":
		return journal.SyncGroup, nil
	case "batch":
		return journal.SyncBatch, nil
	case "none":
		return journal.SyncNone, nil
	}
	return 0, fmt.Errorf("unknown -journal-sync %q (want always, group, batch, or none)", s)
}
