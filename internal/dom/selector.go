package dom

import (
	"fmt"
	"strings"
)

// A minimal CSS selector engine covering the subset the crawler's DOM
// analysis needs: tag, #id, .class, [attr], [attr=value], compound
// selectors, the descendant (space) and child (>) combinators, and
// comma-separated groups. It exists for the same reason Puppeteer scripts
// lean on querySelector: "find the submit control" style queries read far
// better as selectors than as hand-rolled tree walks.

// Query returns every element in root's subtree matching the selector, in
// document order. Invalid selectors return an error.
func Query(root *Node, selector string) ([]*Node, error) {
	groups, err := parseSelectorList(selector)
	if err != nil {
		return nil, err
	}
	var out []*Node
	seen := map[*Node]bool{}
	root.Walk(func(n *Node) bool {
		if n.Type != ElementNode {
			return true
		}
		for _, g := range groups {
			if g.matches(n, root) && !seen[n] {
				seen[n] = true
				out = append(out, n)
				break
			}
		}
		return true
	})
	return out, nil
}

// QueryFirst returns the first match in document order, or nil.
func QueryFirst(root *Node, selector string) (*Node, error) {
	ms, err := Query(root, selector)
	if err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		return nil, nil
	}
	return ms[0], nil
}

// MustQuery is Query for selectors known valid at compile time; it panics
// on a parse error.
func MustQuery(root *Node, selector string) []*Node {
	ms, err := Query(root, selector)
	if err != nil {
		panic(err)
	}
	return ms
}

// --- selector model ---

// simpleSelector is one compound selector: tag#id.class[attr=value]...
type simpleSelector struct {
	tag     string // empty or "*" matches any
	id      string
	classes []string
	attrs   []attrCond
}

type attrCond struct {
	name  string
	value string
	// hasValue distinguishes [name] from [name=""].
	hasValue bool
}

// complexSelector is a chain of simple selectors joined by combinators; the
// last element is the subject.
type complexSelector struct {
	parts []simpleSelector
	// combinators[i] joins parts[i] and parts[i+1]: ' ' or '>'.
	combinators []byte
}

func (c complexSelector) matches(n *Node, root *Node) bool {
	return matchFrom(c, len(c.parts)-1, n, root)
}

func matchFrom(c complexSelector, idx int, n *Node, root *Node) bool {
	if !c.parts[idx].matches(n) {
		return false
	}
	if idx == 0 {
		return true
	}
	switch c.combinators[idx-1] {
	case '>':
		p := n.Parent
		if p == nil || p.Type != ElementNode {
			return false
		}
		return matchFrom(c, idx-1, p, root)
	default: // descendant
		for p := n.Parent; p != nil; p = p.Parent {
			if p.Type == ElementNode && matchFrom(c, idx-1, p, root) {
				return true
			}
			if p == root {
				break
			}
		}
		return false
	}
}

func (s simpleSelector) matches(n *Node) bool {
	if s.tag != "" && s.tag != "*" && n.Tag != s.tag {
		return false
	}
	if s.id != "" && n.ID() != s.id {
		return false
	}
	for _, c := range s.classes {
		if !n.HasClass(c) {
			return false
		}
	}
	for _, a := range s.attrs {
		v, ok := n.Attr(a.name)
		if !ok {
			return false
		}
		if a.hasValue && v != a.value {
			return false
		}
	}
	return true
}

// --- parser ---

func parseSelectorList(src string) ([]complexSelector, error) {
	var out []complexSelector
	for _, part := range strings.Split(src, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("dom: empty selector in %q", src)
		}
		c, err := parseComplex(part)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func parseComplex(src string) (complexSelector, error) {
	var c complexSelector
	i := 0
	expectSelector := true
	for i < len(src) {
		switch {
		case src[i] == ' ' || src[i] == '\t':
			i++
			// A run of spaces is a descendant combinator unless followed
			// by '>' (which takes precedence).
			if !expectSelector && i < len(src) && src[i] != '>' {
				c.combinators = append(c.combinators, ' ')
				expectSelector = true
			}
		case src[i] == '>':
			if expectSelector && len(c.parts) == 0 {
				return c, fmt.Errorf("dom: selector %q starts with combinator", src)
			}
			// Collapse a pending descendant combinator into child.
			if expectSelector && len(c.combinators) > 0 && c.combinators[len(c.combinators)-1] == ' ' {
				c.combinators[len(c.combinators)-1] = '>'
			} else {
				c.combinators = append(c.combinators, '>')
			}
			expectSelector = true
			i++
		default:
			s, n, err := parseSimple(src[i:])
			if err != nil {
				return c, fmt.Errorf("dom: selector %q: %w", src, err)
			}
			c.parts = append(c.parts, s)
			expectSelector = false
			i += n
		}
	}
	if len(c.parts) == 0 {
		return c, fmt.Errorf("dom: selector %q has no subject", src)
	}
	if len(c.combinators) != len(c.parts)-1 {
		return c, fmt.Errorf("dom: selector %q ends with a combinator", src)
	}
	return c, nil
}

// parseSimple parses one compound selector and returns it with the number
// of bytes consumed.
func parseSimple(src string) (simpleSelector, int, error) {
	var s simpleSelector
	i := 0
	readName := func() string {
		start := i
		for i < len(src) {
			ch := src[i]
			if ch == '.' || ch == '#' || ch == '[' || ch == ']' || ch == ' ' ||
				ch == '>' || ch == '=' || ch == ',' {
				break
			}
			i++
		}
		return src[start:i]
	}
	if i < len(src) && (isTagNameStart(src[i]) || src[i] == '*') {
		if src[i] == '*' {
			s.tag = "*"
			i++
		} else {
			s.tag = strings.ToLower(readName())
		}
	}
	for i < len(src) {
		switch src[i] {
		case '#':
			i++
			name := readName()
			if name == "" {
				return s, i, fmt.Errorf("empty id at offset %d", i)
			}
			s.id = name
		case '.':
			i++
			name := readName()
			if name == "" {
				return s, i, fmt.Errorf("empty class at offset %d", i)
			}
			s.classes = append(s.classes, name)
		case '[':
			i++
			name := strings.ToLower(readName())
			if name == "" {
				return s, i, fmt.Errorf("empty attribute name at offset %d", i)
			}
			cond := attrCond{name: name}
			if i < len(src) && src[i] == '=' {
				i++
				cond.hasValue = true
				if i < len(src) && (src[i] == '"' || src[i] == '\'') {
					quote := src[i]
					i++
					start := i
					for i < len(src) && src[i] != quote {
						i++
					}
					if i >= len(src) {
						return s, i, fmt.Errorf("unterminated attribute value")
					}
					cond.value = src[start:i]
					i++
				} else {
					start := i
					for i < len(src) && src[i] != ']' {
						i++
					}
					cond.value = src[start:i]
				}
			}
			if i >= len(src) || src[i] != ']' {
				return s, i, fmt.Errorf("unterminated attribute selector")
			}
			i++
			s.attrs = append(s.attrs, cond)
		default:
			if s.tag == "" && s.id == "" && len(s.classes) == 0 && len(s.attrs) == 0 {
				return s, i, fmt.Errorf("unexpected %q at offset %d", src[i], i)
			}
			return s, i, nil
		}
	}
	if s.tag == "" && s.id == "" && len(s.classes) == 0 && len(s.attrs) == 0 {
		return s, i, fmt.Errorf("empty selector")
	}
	return s, i, nil
}
