package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// readExport reads an export verbatim. NetLog timestamps come from the
// browser's deterministic session clock, so no field is normalized away:
// the comparison below is byte-for-byte.
func readExport(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// stageTable extracts the per-stage timing table from a run's output.
func stageTable(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "Per-stage timing")
	if i < 0 {
		t.Fatalf("no per-stage timing table in output:\n%s", out)
	}
	rest := out[i:]
	if j := strings.Index(rest, "\nsession logs written"); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// segmentFiles returns the journal's segment paths in name order.
func segmentFiles(dir string) []string {
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	sort.Strings(segs)
	return segs
}

// TestKillResumeSmoke is the crash-recovery smoke run wired into `make
// chaos`: crawl with a journal, SIGKILL the process mid-crawl, tear the
// journal's tail mid-record, resume with -resume, and require the resumed
// export to match a clean uninterrupted run byte-for-byte.
func TestKillResumeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary three times")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "phishcrawl")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building phishcrawl: %v\n%s", err, out)
	}

	args := []string{"-sites", "300", "-workers", "8", "-detector-train", "150", "-seed", "42"}
	run := func(extra ...string) string {
		out, err := exec.Command(bin, append(append([]string{}, args...), extra...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("phishcrawl %v: %v\n%s", extra, err, out)
		}
		return string(out)
	}

	// Reference: one uninterrupted, unjournaled run.
	clean := filepath.Join(dir, "clean.jsonl")
	cleanOut := run("-o", clean)

	// Interrupted run: SIGKILL as soon as the journal holds data, which is
	// mid-crawl (sessions stream into the journal as they complete). The
	// interrupted leg runs under -journal-sync group, so the kill lands on
	// the group-commit path: the crash may only lose the unacknowledged
	// batch, and the resume below must still reproduce the clean run
	// byte-for-byte. (The pipeline pools session graphs by default, so this
	// pin also covers pooling across a kill/resume boundary.)
	jdir := filepath.Join(dir, "journal")
	cmd := exec.Command(bin, append(append([]string{}, args...), "-journal", jdir, "-journal-sync", "group")...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		var total int64
		for _, seg := range segmentFiles(jdir) {
			if fi, err := os.Stat(seg); err == nil {
				total += fi.Size()
			}
		}
		if total > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("journal never grew; crawl did not start?")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to report the kill; the journal is what matters

	// Tear the tail: chop one byte off the last segment, simulating a crash
	// mid-append. Resume must truncate the torn record and re-crawl its URL.
	segs := segmentFiles(jdir)
	if len(segs) == 0 {
		t.Fatal("no journal segments after kill")
	}
	last := segs[len(segs)-1]
	if fi, err := os.Stat(last); err == nil && fi.Size() > 1 {
		if err := os.Truncate(last, fi.Size()-1); err != nil {
			t.Fatal(err)
		}
	}

	// Resume and export the merged view.
	resumed := filepath.Join(dir, "resumed.jsonl")
	out := run("-journal", jdir, "-resume", "-o", resumed)
	if !strings.Contains(out, "Journal: resumed") {
		t.Fatalf("resume banner missing from output:\n%s", out)
	}

	// Stage latency percentiles derive from session-logical traces, so the
	// per-stage table — p50/p90/p99 included — must be identical between the
	// clean run and the kill/resume run, not merely close.
	cleanStages := stageTable(t, cleanOut)
	resumedStages := stageTable(t, out)
	if !strings.Contains(cleanStages, "P50") || !strings.Contains(cleanStages, "P99") {
		t.Errorf("stage table missing percentile columns:\n%s", cleanStages)
	}
	if cleanStages != resumedStages {
		t.Errorf("per-stage timing diverges between clean and resumed runs:\nclean:\n%s\nresumed:\n%s",
			cleanStages, resumedStages)
	}

	cleanBytes := readExport(t, clean)
	resumedBytes := readExport(t, resumed)
	if cleanBytes != resumedBytes {
		cl := strings.Split(cleanBytes, "\n")
		rl := strings.Split(resumedBytes, "\n")
		n := 0
		for n < len(cl) && n < len(rl) && cl[n] == rl[n] {
			n++
		}
		t.Fatalf("resumed export diverges from clean run at line %d (clean %d lines, resumed %d)",
			n+1, len(cl), len(rl))
	}
}
