package crawler

import (
	"strings"

	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/metrics"
	"repro/internal/ocr"
	"repro/internal/raster"
	"repro/internal/textclass"
	"repro/internal/trace"
)

// ocrSearchDist is the pixel distance (left and above the input box) the
// OCR label search covers, the "threshold distance, measured in pixels" of
// Section 4.1.
const ocrSearchDist = 150

// FieldInfo is the output of input-field identification for one element:
// everything Section 4.1 collects before classification.
type FieldInfo struct {
	Node *dom.Node
	// Box is the rendering bounding box.
	Box raster.Rect
	// Description is the assembled text describing what the field asks
	// for: node properties, neighbour text, and OCR results when needed.
	Description string
	// HTMLType is the element's type attribute.
	HTMLType string
	// UsedOCR marks fields whose description required visual analysis
	// because DOM analysis yielded nothing useful (the 27% measurement).
	UsedOCR bool
}

// identifyFields runs Section 4.1 over a page: find the visible inputs,
// assemble each one's description from DOM context, and fall back to OCR on
// the rendered page when the DOM is uninformative. A nil engine disables
// the OCR fallback (the DOM-only ablation).
func (c *Crawler) identifyFields(p *browser.Page, eng *ocr.Engine, tr *trace.Session) []FieldInfo {
	lay := p.Render().Layout
	var out []FieldInfo
	for _, n := range p.VisibleInputs() {
		box, _ := lay.Box(n)
		info := FieldInfo{
			Node:     n,
			Box:      box,
			HTMLType: strings.ToLower(n.AttrOr("type", "")),
		}
		desc := domDescription(p.Doc, n)
		if !textclass.HasTokens(desc) && eng != nil {
			// DOM analysis found nothing useful: visual analysis of the
			// regions to the left and above the box (Figure 3 defence).
			// The page's cached ink mask is shared across every field's
			// label search on this rendering.
			span := tr.Begin(trace.KindStage, metrics.StageOCR.String())
			desc = eng.TextNearMask(p.OCRMask(), box, ocrSearchDist)
			// The OCR work cost scales with how much label text the visual
			// search had to read.
			tr.Advance(1 + len(desc))
			c.Timings.Observe(metrics.StageOCR, tr.End(span))
			info.UsedOCR = true
		}
		info.Description = strings.TrimSpace(desc)
		out = append(out, info)
	}
	return out
}

// domDescription assembles the field's description from DOM context only:
// its own properties, the form it belongs to, label elements, and
// neighbouring text nodes (Section 4.1 steps 1-2).
func domDescription(doc *dom.Node, n *dom.Node) string {
	// One builder accumulates every part, space-separated — the streaming
	// equivalent of collecting parts and strings.Join-ing them. Parts are
	// trimmed but otherwise appended verbatim (matching the historical
	// join), while node text goes through the Append helpers, which write
	// the same bytes InnerText/OwnText would contribute.
	var b strings.Builder
	add := func(s string) {
		s = strings.TrimSpace(s)
		if s == "" {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s)
	}
	// Node properties.
	add(splitIdent(n.AttrOr("name", "")))
	add(splitIdent(n.ID()))
	add(n.AttrOr("placeholder", ""))
	add(n.AttrOr("aria-label", ""))
	if t := n.AttrOr("type", ""); t != "" && t != "text" {
		add(t)
	}
	// label element bound via for=.
	if id := n.ID(); id != "" {
		if lbl, err := dom.QueryFirst(doc, `label[for="`+id+`"]`); err == nil && lbl != nil {
			lbl.AppendInnerText(&b)
		}
	}
	// Enclosing label.
	if lbl := n.Closest("label"); lbl != nil {
		lbl.AppendInnerText(&b)
	}
	// Select options hint at the data type (state lists, month lists).
	if n.Tag == "select" {
		opts := n.ElementsByTag("option")
		for i, o := range opts {
			if i >= 2 {
				break
			}
			o.AppendInnerText(&b)
		}
	}
	// Preceding siblings: the label usually sits just before the input.
	for sib, hops := n.PrevSibling, 0; sib != nil && hops < 3; sib, hops = sib.PrevSibling, hops+1 {
		switch sib.Type {
		case dom.TextNode:
			add(sib.Data)
		case dom.ElementNode:
			if sib.Tag == "label" || sib.Tag == "span" || sib.Tag == "div" || sib.Tag == "b" || sib.Tag == "p" {
				sib.AppendInnerText(&b)
			}
		}
	}
	// Parent's own text (text nodes directly inside the wrapper).
	if n.Parent != nil {
		n.Parent.AppendOwnText(&b)
	}
	return b.String()
}

// splitIdent breaks identifier-style strings (card_number, cardNumber,
// card-number) into words.
func splitIdent(s string) string {
	if s == "" {
		return ""
	}
	var b strings.Builder
	prevLower := false
	for _, r := range s {
		switch {
		case r == '_' || r == '-' || r == '.' || r == '[' || r == ']':
			b.WriteByte(' ')
			prevLower = false
		case r >= 'A' && r <= 'Z':
			if prevLower {
				b.WriteByte(' ')
			}
			b.WriteRune(r + ('a' - 'A'))
			prevLower = false
		default:
			b.WriteRune(r)
			prevLower = r >= 'a' && r <= 'z'
		}
	}
	return b.String()
}
