// Package browser implements the headless-browser substrate the intelligent
// crawler drives, replacing Puppeteer + Chrome. It fetches pages over real
// net/http, parses them into a DOM, renders screenshots, interprets the
// page's declarative behaviour script (event listeners, keyloggers, content
// swaps, click zones), and exposes the interaction verbs the crawler needs:
// type into a field, press Enter, click an element or a coordinate, and
// submit a form programmatically. Along the way it records the three logs
// the paper's instrumentation collects (Section 4.5): network requests,
// addEventListener registrations, and triggered JS events.
package browser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/dom"
	"repro/internal/ocr"
	"repro/internal/raster"
	"repro/internal/render"
	"repro/internal/script"
)

// ViewportWidth is the fixed viewport the browser renders at.
const ViewportWidth = 800

// maxBodyBytes bounds response reads.
const maxBodyBytes = 4 << 20

// NetRequest is one entry in the network log.
type NetRequest struct {
	Method string
	URL    string
	Status int
	// CarriedData lists form/exfil values included in the request body,
	// used by the keylogging analysis to confirm pre-submit exfiltration.
	CarriedData []string
	// Kind labels the request: "document", "image", "beacon", "redirect".
	Kind string
	Time time.Time
	// Vary echoes the response's Vary header when present. Cloaking decoys
	// list the request dimensions their gate inspected there, and the
	// crawler's adaptive loop reads the signal back out of the net log.
	Vary string `json:",omitempty"`
	// JSChallenge echoes the response's X-JS-Challenge token when present —
	// the JS-capability probe a decoy page poses.
	JSChallenge string `json:",omitempty"`
}

// Event is one triggered JS event.
type Event struct {
	Type   string // "keydown", "click", "submit"
	Target string // tag or id of the target element
	Time   time.Time
}

// DefaultFetchTimeout bounds each fetch when Options.Timeout is unset.
const DefaultFetchTimeout = 10 * time.Second

// Browser is one browsing profile. Create a fresh Browser per crawl session
// to model the paper's clean-container-per-site setup (Section 4.6) — or,
// equivalently, Reset a recycled one: a reset browser is observationally
// identical to a new one.
type Browser struct {
	transport    http.RoundTripper
	cookies      map[string]string // minimal cookie jar: name -> value
	ctx          context.Context   // session context; fetch deadlines derive from it
	fetchTimeout time.Duration

	// recycle marks this browser as part of a pooled session graph: cached
	// renderings and ink masks are returned to their pools the moment a DOM
	// mutation invalidates them, because the pool's owner (the crawler)
	// guarantees nothing else holds them. Browsers outside a pool leave
	// invalidated buffers to the garbage collector, which is always safe.
	recycle bool

	// cookieNames is sorted-header scratch reused across requests.
	cookieNames []string

	// profile is the identity presented on every request; see Profile.
	profile Profile

	// NetLog accumulates every request across the session.
	NetLog []NetRequest
	// now supplies log timestamps. The default is a deterministic
	// session-logical clock (see sessionClock), not the wall clock: log
	// times are part of the journaled session bytes, and the journal's
	// resume guarantee is that a resumed run's records are byte-identical
	// to an uninterrupted run's.
	now func() time.Time
}

// sessionClock returns the browser's default timestamp source: a logical
// clock that starts at the Unix epoch and advances one millisecond per
// observation. Event ORDER — the only thing the analyses consume — is
// preserved, and two crawls of the same seed produce identical bytes.
// Wall-clock time stays behind the internal/metrics seam.
func sessionClock() func() time.Time {
	var ticks int64
	return func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond)).UTC()
	}
}

// SetClock replaces the browser's timestamp source. The crawler installs
// the session trace's logical clock here so browser log timestamps and
// trace span boundaries advance one shared deterministic timeline; the
// replacement must be another logical clock, never the wall clock (log
// times are journaled session bytes, pinned byte-identical across
// kill/resume). A nil clock keeps the current source.
func (b *Browser) SetClock(clock func() time.Time) {
	if clock != nil {
		b.now = clock
	}
}

// Options configures a Browser.
type Options struct {
	// Transport serves the requests. Tests and the crawl farm inject the
	// phishing-site registry here so no TCP sockets are needed; nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Timeout bounds each fetch. It is enforced as a per-request context
	// deadline (not http.Client.Timeout) so expiry surfaces as
	// context.DeadlineExceeded and the crawler can classify it.
	Timeout time.Duration
}

// New returns a fresh browser profile. Requests go straight to the
// transport — redirects and cookies are the browser's own job (each hop is
// logged), so the http.Client middle layer would only re-clone headers per
// request.
func New(opts Options) *Browser {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultFetchTimeout
	}
	transport := opts.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &Browser{
		transport:    transport,
		cookies:      map[string]string{},
		ctx:          context.Background(),
		fetchTimeout: opts.Timeout,
		profile:      DefaultProfile(),
		now:          sessionClock(),
	}
}

// Reset returns the browser to its freshly-created state while keeping
// allocated capacity (the cookie jar's buckets and the net log's backing
// array). A reset browser behaves identically to one returned by New with
// the same Options: empty jar, empty log, background session context, and
// a fresh session-logical clock starting at zero.
func (b *Browser) Reset() {
	clear(b.cookies)
	b.NetLog = b.NetLog[:0]
	b.ctx = context.Background()
	b.profile = DefaultProfile()
	b.now = sessionClock()
}

// EnableRecycle opts this browser into pooled-session-graph mode: see the
// recycle field. Only the session pool's owner may enable it, because it
// asserts that nothing outside the current session holds renderings or
// masks across DOM mutations.
func (b *Browser) EnableRecycle() { b.recycle = true }

// SetContext installs ctx as the session context: every subsequent fetch
// derives its per-request deadline from it, so cancelling ctx aborts the
// session's in-flight network work. The crawler installs its per-session
// wall-clock budget here (Section 4.6's 20-minute session timeout).
func (b *Browser) SetContext(ctx context.Context) {
	if ctx != nil {
		b.ctx = ctx
	}
}

// Page is one loaded page: its DOM, rendering, behaviours, and event state.
type Page struct {
	URL    string
	Status int
	Doc    *dom.Node
	// Behavior is the parsed behaviour document.
	Behavior script.Behavior
	// ListenerLog is the addEventListener record for this page.
	ListenerLog []script.Listener
	// EventLog is the triggered-event record for this page.
	EventLog []Event
	// images caches decoded image resources by URL.
	images map[string]*raster.Image

	browser *Browser
	page    *render.Page // lazy render cache
	ocrMask *ocr.Mask    // lazy binarization of the current screenshot
	domHash string       // lazy structural hash of Doc
}

// ErrTooManyRedirects limits redirect chains.
var ErrTooManyRedirects = errors.New("browser: too many redirects")

// Navigate fetches url, follows redirects, parses the page, loads its image
// resources, and interprets its behaviour script.
func (b *Browser) Navigate(rawURL string) (*Page, error) {
	body, finalURL, status, err := b.fetch("GET", rawURL, nil, "document")
	if err != nil {
		return nil, err
	}
	return b.buildPage(body, finalURL, status)
}

func (b *Browser) buildPage(body, pageURL string, status int) (*Page, error) {
	doc := dom.Parse(body)
	behavior, err := script.Extract(doc)
	if err != nil {
		// Malformed behaviour scripts are treated like broken JS: ignored.
		behavior = script.Behavior{}
	}
	p := &Page{
		URL:      pageURL,
		Status:   status,
		Doc:      doc,
		Behavior: behavior,
		browser:  b,
		images:   map[string]*raster.Image{},
	}
	// Record addEventListener calls made at load time.
	p.ListenerLog = append(p.ListenerLog, behavior.Listeners...)
	// Prefetch image resources so rendering is synchronous.
	p.prefetchImages()
	return p, nil
}

// fetch performs one logged request, handling cookies and redirect chains.
func (b *Browser) fetch(method, rawURL string, form url.Values, kind string) (body, finalURL string, status int, err error) {
	cur := rawURL
	// Carried values are logged in sorted field order: map iteration order
	// would otherwise make two identical runs export different logs, and
	// the crawl journal's resume guarantee is that a resumed run's records
	// match an uninterrupted run's.
	var carried []string
	if len(form) > 0 {
		keys := make([]string, 0, len(form))
		for k := range form {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		// Every value of a multi-valued field is carried — keyed exfil
		// beacons repeat the "d" field per keystroke, and logging only the
		// first value would under-count the exfiltrated data.
		for _, k := range keys {
			carried = append(carried, form[k]...)
		}
	}
	jsAnswered := false
	for hop := 0; hop < 10; hop++ {
		data, status, loc, challenge, err := b.roundTrip(method, cur, form, kind, carried)
		if err != nil {
			return "", cur, 0, err
		}
		if status >= 300 && status < 400 {
			if loc == "" {
				return "", cur, status, nil
			}
			next, jerr := joinURL(cur, loc)
			if jerr != nil {
				return "", cur, status, jerr
			}
			cur = next
			// 307/308 preserve the method and body across the hop — a kit
			// that 307-redirects the credential POST must still observe the
			// submission. Every other 3xx re-issues as GET, as browsers do
			// for 301/302/303.
			if status != http.StatusTemporaryRedirect && status != http.StatusPermanentRedirect {
				method, form = "GET", nil
			}
			kind = "redirect"
			continue
		}
		if challenge != "" && b.profile.JSCapable && !jsAnswered {
			// A JS-capability probe on the response: answer it in the jar
			// and re-request, as the kit's probe script would. One answer
			// per fetch — a rejected answer must not loop.
			b.answerChallenge(challenge)
			jsAnswered = true
			continue
		}
		return data, cur, status, nil
	}
	return "", cur, 0, ErrTooManyRedirects
}

// roundTrip issues one HTTP request under the per-fetch deadline (derived
// from the session context, so a session-budget cancellation aborts it),
// logs it, and absorbs Set-Cookie headers — inserting live cookies and
// deleting entries the server expires (Max-Age=0 or an epoch-or-earlier
// Expires). Redirect statuses return the Location header with an empty
// body; challenge carries the response's JS-capability probe token.
func (b *Browser) roundTrip(method, cur string, form url.Values, kind string, carried []string) (data string, status int, location, challenge string, err error) {
	ctx, cancel := context.WithTimeout(b.ctx, b.fetchTimeout)
	defer cancel()
	var req *http.Request
	if method == "POST" && form != nil {
		req, err = http.NewRequestWithContext(ctx, method, cur, strings.NewReader(form.Encode()))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, method, cur, nil)
	}
	if err != nil {
		return "", 0, "", "", fmt.Errorf("browser: building request: %w", err)
	}
	b.applyProfile(req.Header)
	// The Cookie header is part of the request bytes the server (and the
	// keylogging analysis) observes; emit it in sorted name order so it
	// never depends on map iteration. Built as one header value (the wire
	// format AddCookie produces) with reused name scratch.
	if len(b.cookies) > 0 {
		names := b.cookieNames[:0]
		for name := range b.cookies {
			names = append(names, name)
		}
		sort.Strings(names)
		var sb strings.Builder
		for i, name := range names {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(name)
			sb.WriteByte('=')
			sb.WriteString(b.cookies[name])
		}
		req.Header.Set("Cookie", sb.String())
		b.cookieNames = names
	}
	resp, rerr := b.transport.RoundTrip(req)
	if rerr != nil {
		b.NetLog = append(b.NetLog, NetRequest{Method: method, URL: cur, Status: 0, Kind: kind, Time: b.now()})
		return "", 0, "", "", fmt.Errorf("browser: fetch %s: %w", cur, rerr)
	}
	defer resp.Body.Close()
	for _, c := range resp.Cookies() {
		if epochExpired(c) {
			delete(b.cookies, c.Name)
			continue
		}
		b.cookies[c.Name] = c.Value
	}
	challenge = resp.Header.Get(JSChallengeHeader)
	entry := NetRequest{
		Method: method, URL: cur, Status: resp.StatusCode, Kind: kind, Time: b.now(),
		Vary: resp.Header.Get("Vary"), JSChallenge: challenge,
	}
	if method == "POST" {
		entry.CarriedData = carried
	}
	b.NetLog = append(b.NetLog, entry)
	if resp.StatusCode >= 300 && resp.StatusCode < 400 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		return "", resp.StatusCode, resp.Header.Get("Location"), challenge, nil
	}
	raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if rerr != nil {
		return "", resp.StatusCode, "", challenge, fmt.Errorf("browser: reading body of %s: %w", cur, rerr)
	}
	return string(raw), resp.StatusCode, "", challenge, nil
}

// joinURL resolves ref against base.
func joinURL(base, ref string) (string, error) {
	bu, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("browser: bad base url: %w", err)
	}
	ru, err := url.Parse(ref)
	if err != nil {
		return "", fmt.Errorf("browser: bad ref url: %w", err)
	}
	return bu.ResolveReference(ru).String(), nil
}

// prefetchImages fetches every img src and background-image URL.
func (p *Page) prefetchImages() {
	fetchOne := func(src string) {
		if src == "" {
			return
		}
		if _, done := p.images[src]; done {
			return
		}
		if strings.HasPrefix(src, "data:") {
			if img, err := raster.DecodeDataURI(src); err == nil {
				p.images[src] = img
			}
			return
		}
		abs, err := joinURL(p.URL, src)
		if err != nil {
			return
		}
		body, _, status, err := p.browser.fetch("GET", abs, nil, "image")
		if err != nil || status != http.StatusOK {
			return
		}
		if img, err := raster.Decode([]byte(body)); err == nil {
			p.images[src] = img
		}
	}
	for _, img := range p.Doc.ElementsByTag("img") {
		fetchOne(img.AttrOr("src", ""))
	}
	p.Doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode {
			if style, ok := n.Attr("style"); ok && strings.Contains(style, "url(") {
				// Reuse the layout parser's extraction via a cheap scan.
				if i := strings.Index(style, "url("); i >= 0 {
					rest := style[i+4:]
					if j := strings.IndexByte(rest, ')'); j >= 0 {
						fetchOne(strings.Trim(strings.TrimSpace(rest[:j]), `'"`))
					}
				}
			}
		}
		return true
	})
}

// Render returns the page's layout and screenshot, computing them on first
// use and after DOM mutations (invalidate with MarkDirty).
func (p *Page) Render() *render.Page {
	if p.page == nil {
		p.page = render.Render(p.Doc, ViewportWidth, func(u string) *raster.Image {
			return p.images[u]
		})
	}
	return p.page
}

// MarkDirty invalidates the cached rendering (and the OCR mask derived
// from it) after DOM mutation.
func (p *Page) MarkDirty() {
	p.domHash = ""
	if p.browser != nil && p.browser.recycle {
		// Pooled session graph: the crawler owns every rendering, so the
		// invalidated buffers go straight back to their pools.
		p.ReleaseRender()
		return
	}
	p.page = nil
	// The old mask is dropped, not Released: a caller that fetched it
	// before the mutation may still be reading it.
	p.ocrMask = nil
}

// ReleaseRender returns the page's cached rendering and ink mask to their
// pools and clears the caches. The caller asserts nothing else holds the
// screenshot, layout, or mask (or any view of their storage). The page
// itself remains usable — the next Render recomputes.
func (p *Page) ReleaseRender() {
	if p.page != nil {
		p.page.Release()
		p.page = nil
	}
	if p.ocrMask != nil {
		p.ocrMask.Release()
		p.ocrMask = nil
	}
}

// Screenshot returns the current page screenshot.
func (p *Page) Screenshot() *raster.Image { return p.Render().Screenshot }

// OCRMask returns the ink mask of the current screenshot, binarizing on
// first use. Repeat OCR passes over the same rendering (label lookup per
// input field) share this one mask; MarkDirty invalidates it along with
// the rendering.
func (p *Page) OCRMask() *ocr.Mask {
	if p.ocrMask == nil {
		p.ocrMask = ocr.NewMask(p.Screenshot())
	}
	return p.ocrMask
}

// DOMHash returns the lightweight structural hash used for page-transition
// detection, computed once per rendering generation (MarkDirty invalidates
// it along with the render caches).
func (p *Page) DOMHash() string {
	if p.domHash == "" {
		p.domHash = dom.StructureHash(p.Doc)
	}
	return p.domHash
}

// Host returns the page URL's host.
func (p *Page) Host() string {
	u, err := url.Parse(p.URL)
	if err != nil {
		return ""
	}
	return u.Host
}

func (p *Page) logEvent(typ string, target *dom.Node) {
	name := target.Tag
	if id := target.ID(); id != "" {
		name = name + "#" + id
	}
	if p.EventLog == nil {
		// Sized for a typical fill-and-submit page (per-keystroke keydowns
		// plus change/click/submit) so the log grows without reslicing;
		// staying nil until the first event keeps the JSON export null.
		p.EventLog = make([]Event, 0, 16)
	}
	p.EventLog = append(p.EventLog, Event{Type: typ, Target: name, Time: p.browser.now()})
}

// Type enters text into an input or select element, firing per-keystroke
// keydown events and any keylogger behaviours attached to inputs.
func (p *Page) Type(n *dom.Node, text string) {
	if n == nil {
		return
	}
	if n.Tag == "select" {
		// Selecting an option: set value, fire change.
		n.SetAttr("value", text)
		p.logEvent("change", n)
		p.MarkDirty()
		return
	}
	for range text {
		p.logEvent("keydown", n)
	}
	n.SetAttr("value", text)
	p.MarkDirty()
	// Keylogger behaviours fire once the field has content.
	for _, l := range p.Behavior.Listeners {
		if l.Event != "keydown" || (l.Target != "input" && l.Target != "document") {
			continue
		}
		endpoint := l.Endpoint
		if endpoint == "" {
			endpoint = "/k"
		}
		switch l.Action {
		case script.ActionSend:
			abs, err := joinURL(p.URL, endpoint)
			if err == nil {
				p.browser.fetch("POST", abs, url.Values{}, "beacon")
			}
		case script.ActionSendData:
			abs, err := joinURL(p.URL, endpoint)
			if err == nil {
				p.browser.fetch("POST", abs, url.Values{"d": {text}}, "beacon")
			}
		}
	}
}

// ErrNoNavigation reports an interaction that did not lead anywhere.
var ErrNoNavigation = errors.New("browser: interaction caused no navigation")

// Click activates an element: follows links, submits forms via submit
// buttons, applies content swaps. It returns the new page when navigation
// occurred, or (nil, ErrNoNavigation) when the click had no effect —
// both outcomes the crawler's progress detection must handle.
func (p *Page) Click(n *dom.Node) (*Page, error) {
	if n == nil {
		return nil, ErrNoNavigation
	}
	p.logEvent("click", n)
	// Behaviour swap bound to this element id?
	if id := n.ID(); id != "" {
		if swap, ok := p.Behavior.SwapFor(id); ok {
			return p.applySwap(swap)
		}
	}
	switch n.Tag {
	case "a":
		href := n.AttrOr("href", "")
		if href == "" || href == "#" {
			return nil, ErrNoNavigation
		}
		abs, err := joinURL(p.URL, href)
		if err != nil {
			return nil, err
		}
		return p.browser.Navigate(abs)
	case "button":
		t := strings.ToLower(n.AttrOr("type", "submit"))
		if t == "submit" {
			if form := n.Closest("form"); form != nil {
				return p.SubmitForm(form)
			}
		}
		if href := n.AttrOr("data-href", ""); href != "" {
			abs, err := joinURL(p.URL, href)
			if err != nil {
				return nil, err
			}
			return p.browser.Navigate(abs)
		}
		return nil, ErrNoNavigation
	case "input":
		t := strings.ToLower(n.AttrOr("type", ""))
		if t == "submit" || t == "image" {
			if form := n.Closest("form"); form != nil {
				return p.SubmitForm(form)
			}
		}
		return nil, ErrNoNavigation
	default:
		return nil, ErrNoNavigation
	}
}

// ClickAt clicks a screen coordinate: behaviour click zones take priority,
// then whatever rendered element occupies the point. This is the verb the
// crawler's visual submit-button detection drives (Section 4.3).
func (p *Page) ClickAt(x, y int) (*Page, error) {
	if zone, ok := p.Behavior.ZoneAt(x, y); ok {
		switch zone.Action {
		case "submit":
			form := p.Doc.ElementByID(zone.FormID)
			if form == nil {
				forms := p.Doc.ElementsByTag("form")
				if len(forms) > 0 {
					form = forms[0]
				}
			}
			if form != nil {
				return p.SubmitForm(form)
			}
			// Form-less pages (absolutely-positioned bare inputs, the
			// Figure 3 shape): serialize every input on the page.
			return p.SubmitBareInputs()
		case "nav":
			abs, err := joinURL(p.URL, zone.Href)
			if err != nil {
				return nil, err
			}
			return p.browser.Navigate(abs)
		}
	}
	// Hit-test the layout: prefer the smallest interactive element under
	// the point.
	lay := p.Render().Layout
	var best *dom.Node
	bestArea := 1 << 30
	p.Doc.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		box, ok := lay.Box(n)
		if !ok || !box.Contains(x, y) {
			return true
		}
		if !isInteractive(n) {
			return true
		}
		if a := box.Area(); a < bestArea {
			best, bestArea = n, a
		}
		return true
	})
	if best == nil {
		return nil, ErrNoNavigation
	}
	return p.Click(best)
}

func isInteractive(n *dom.Node) bool {
	switch n.Tag {
	case "a", "button":
		return true
	case "input":
		t := strings.ToLower(n.AttrOr("type", ""))
		return t == "submit" || t == "image" || t == "button"
	}
	return false
}

// PressEnter simulates the Enter key with focus on the given element,
// submitting its enclosing form if one exists.
func (p *Page) PressEnter(focus *dom.Node) (*Page, error) {
	if focus == nil {
		return nil, ErrNoNavigation
	}
	p.logEvent("keydown", focus)
	if form := focus.Closest("form"); form != nil {
		return p.SubmitForm(form)
	}
	return nil, ErrNoNavigation
}

// SubmitForm serializes the form's fields and POSTs them to the form action
// (or the page URL when the action is empty), the equivalent of invoking
// form.submit() from page JS.
func (p *Page) SubmitForm(form *dom.Node) (*Page, error) {
	if form == nil {
		return nil, ErrNoNavigation
	}
	p.logEvent("submit", form)
	values := url.Values{}
	i := 0
	form.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		if n.Tag == "input" || n.Tag == "select" || n.Tag == "textarea" {
			name := n.AttrOr("name", "")
			if name == "" {
				name = fmt.Sprintf("field%d", i)
			}
			i++
			values.Set(name, n.AttrOr("value", ""))
		}
		return true
	})
	action := form.AttrOr("action", "")
	target := p.URL
	if action != "" {
		abs, err := joinURL(p.URL, action)
		if err != nil {
			return nil, err
		}
		target = abs
	}
	body, finalURL, status, err := p.browser.fetch("POST", target, values, "document")
	if err != nil {
		return nil, err
	}
	return p.browser.buildPage(body, finalURL, status)
}

// SubmitBareInputs POSTs every input on a form-less page to the current
// URL, the transport-level effect of page JS that collects field values by
// hand. Used by click zones on pages that deliberately omit form elements.
func (p *Page) SubmitBareInputs() (*Page, error) {
	values := url.Values{}
	i := 0
	for _, n := range p.Doc.ElementsByTag("input", "select", "textarea") {
		name := n.AttrOr("name", "")
		if name == "" {
			name = fmt.Sprintf("field%d", i)
		}
		i++
		values.Set(name, n.AttrOr("value", ""))
	}
	if i == 0 {
		return nil, ErrNoNavigation
	}
	body, finalURL, status, err := p.browser.fetch("POST", p.URL, values, "document")
	if err != nil {
		return nil, err
	}
	return p.browser.buildPage(body, finalURL, status)
}

// VisibleInputs returns the page's visible input and select elements — the
// crawler's starting point (Section 4.1).
func (p *Page) VisibleInputs() []*dom.Node {
	lay := p.Render().Layout
	var out []*dom.Node
	for _, n := range p.Doc.ElementsByTag("input", "select") {
		t := strings.ToLower(n.AttrOr("type", ""))
		if t == "hidden" || t == "submit" || t == "image" || t == "button" || t == "checkbox" || t == "radio" {
			continue
		}
		if lay.Visible(n) {
			out = append(out, n)
		}
	}
	return out
}

func (p *Page) applySwap(swap script.Swap) (*Page, error) {
	body := dom.Body(p.Doc)
	body.RemoveChildren()
	frag := dom.Parse(swap.HTML)
	for _, c := range dom.Body(frag).Children() {
		body.AppendChild(c)
	}
	// Behaviour scripts inside the swapped content take effect.
	if b, err := script.Extract(p.Doc); err == nil {
		p.Behavior = b
		p.ListenerLog = append(p.ListenerLog, b.Listeners...)
	}
	p.MarkDirty()
	p.prefetchImages()
	return p, nil
}
