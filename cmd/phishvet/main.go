// Command phishvet runs the project's determinism-and-durability linter
// over package patterns, printing compiler-style diagnostics and gating CI
// through its exit code:
//
//	phishvet ./...                            # whole tree (make lint does this)
//	phishvet -rules maporder,wallclock ./...  # a subset of rules
//	phishvet -json ./...                      # one JSON object per finding
//	phishvet -audit ./...                     # inventory every suppression
//	phishvet ./internal/phishvet/testdata/src/maporder/...
//
// Exit status: 0 clean, 1 diagnostics reported (or, under -audit,
// malformed suppressions found), 2 usage or load failure (including
// packages that do not type-check — findings in a broken package are not
// trustworthy).
//
// Suppress a finding with a justified ignore on the same line or the line
// above; bare ignores are themselves diagnostics:
//
//	//phishvet:ignore <rule>: <justification>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/phishvet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding fixes the machine-readable field order: file, line, col,
// rule, message. Scripts parse this; the order is part of the contract.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonAudit is one suppression in -audit -json output. Bad is empty for
// well-formed ignores and carries the defect otherwise.
type jsonAudit struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Rule          string `json:"rule,omitempty"`
	Justification string `json:"justification,omitempty"`
	Bad           string `json:"bad,omitempty"`
}

// run is the whole CLI, factored so tests can pin flag validation, exit
// codes, and output shapes without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("phishvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all)")
	list := fs.Bool("list", false, "list rules and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding (or per suppression with -audit)")
	audit := fs.Bool("audit", false, "inventory every //phishvet:ignore instead of running rules")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: phishvet [-rules r1,r2] [-list] [-json] [-audit] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// -rules is validated before -list so `phishvet -list -rules nope`
	// fails loudly instead of listing rules the filter would reject.
	selected, err := phishvet.Select(*rules)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, r := range selected {
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name, r.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := phishvet.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			broken = true
			fmt.Fprintf(stderr, "phishvet: %s: %v\n", pkg.Path, terr)
		}
	}
	if broken {
		return 2
	}

	// Relative paths keep output stable across checkouts and clickable
	// from the repo root.
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(r) {
			return r
		}
		return name
	}

	if *audit {
		return runAudit(pkgs, rel, *jsonOut, stdout, stderr)
	}

	diags := phishvet.Check(pkgs, selected)
	perRule := map[string]int{}
	for _, d := range diags {
		d.Pos.Filename = rel(d.Pos.Filename)
		perRule[d.Rule]++
		if *jsonOut {
			writeJSONLine(stdout, jsonFinding{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
			continue
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "phishvet: %d finding(s) in %d package(s) (%s)\n",
			len(diags), len(pkgs), ruleCounts(perRule))
		return 1
	}
	return 0
}

// runAudit prints the full suppression inventory. Malformed ignores (the
// suppression meta-rule's findings) flip the exit code to 1 so CI can
// gate on a clean inventory.
func runAudit(pkgs []*phishvet.Package, rel func(string) string, jsonOut bool, stdout, stderr io.Writer) int {
	entries := phishvet.Audit(pkgs)
	bad := 0
	for _, e := range entries {
		file := rel(e.Pos.Filename)
		if e.Bad != "" {
			bad++
		}
		if jsonOut {
			writeJSONLine(stdout, jsonAudit{
				File:          file,
				Line:          e.Pos.Line,
				Rule:          e.Rule,
				Justification: e.Justification,
				Bad:           e.Bad,
			})
			continue
		}
		if e.Bad != "" {
			fmt.Fprintf(stdout, "%s:%d: [malformed] %s\n", file, e.Pos.Line, e.Bad)
			continue
		}
		fmt.Fprintf(stdout, "%s:%d: %s — %s\n", file, e.Pos.Line, e.Rule, e.Justification)
	}
	fmt.Fprintf(stderr, "phishvet: %d suppression(s), %d malformed\n", len(entries), bad)
	if bad > 0 {
		return 1
	}
	return 0
}

// ruleCounts renders "rule:count" pairs sorted by rule name, the per-rule
// breakdown `make lint` surfaces on failure.
func ruleCounts(perRule map[string]int) string {
	names := make([]string, 0, len(perRule))
	for n := range perRule {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s:%d", n, perRule[n])
	}
	return strings.Join(parts, ", ")
}

func writeJSONLine(w io.Writer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Structs of strings and ints cannot fail to marshal; keep the
		// line-oriented contract even if that ever changes.
		fmt.Fprintf(w, `{"error":%q}`+"\n", err.Error())
		return
	}
	w.Write(append(b, '\n'))
}
