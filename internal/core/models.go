package core

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/captcha"
	"repro/internal/fielddata"
	"repro/internal/pagegen"
	"repro/internal/phash"
	"repro/internal/termclass"
	"repro/internal/textclass"
	"repro/internal/vision"
	"repro/internal/visualphish"
)

// ModelParams is the complete training input: two pipelines with equal
// params train byte-identical models, which is what makes the bundle
// shareable and the process-wide cache sound.
type ModelParams struct {
	// Seed drives every training RNG stream (the same derivations
	// NewPipeline has always used: Seed, Seed+2/+3, Seed+4, Seed+5).
	Seed int64
	// DetectorTrainPages is the object detector's training-set size.
	DetectorTrainPages int
}

// Models is the trained, immutable model bundle a Pipeline crawls with: the
// input-field classifier, the visual object detector, the terminal-page
// classifier, the visual-CAPTCHA exemplar hashes, and the brand gallery.
// Training is the expensive part of pipeline construction; the bundle
// exists so it happens once per ModelParams and is then shared read-only
// across every pipeline, worker, resume run, and benchmark iteration that
// uses the same params. None of the fields may be mutated after TrainModels
// returns.
type Models struct {
	Params ModelParams

	FieldClassifier  *textclass.Model
	Detector         *vision.Detector
	TermClassifier   *termclass.Classifier
	Gallery          *visualphish.Gallery
	CaptchaExemplars []phash.Hash
}

// TrainModels trains the full bundle from scratch. The four training steps
// draw from independent seeded RNG streams and share no mutable state, so
// they run concurrently; outputs are bit-identical to training them one
// after another. Errors are checked in the original serial order so the
// reported failure doesn't depend on scheduling.
func TrainModels(params ModelParams) (*Models, error) {
	m := &Models{Params: params}
	var (
		wg                        sync.WaitGroup
		fieldErr, detErr, termErr error
	)
	wg.Add(4)
	go func() {
		defer wg.Done()
		m.FieldClassifier, fieldErr = fielddata.TrainMultilingual(params.Seed)
	}()
	go func() {
		defer wg.Done()
		m.Detector, detErr = vision.Train(pagegen.GenerateSet(params.DetectorTrainPages, params.Seed+2, pagegen.Config{}), params.Seed+3)
	}()
	go func() {
		defer wg.Done()
		m.TermClassifier, termErr = termclass.Train(params.Seed + 4)
	}()
	go func() {
		defer wg.Done()
		for _, kind := range captcha.VisualKinds() {
			for _, crop := range pagegen.CaptchaCrops(kind, 10, params.Seed+5) {
				m.CaptchaExemplars = append(m.CaptchaExemplars, phash.Compute(crop))
			}
		}
	}()
	m.Gallery = analysis.BrandGallery()
	wg.Wait()
	if fieldErr != nil {
		return nil, fmt.Errorf("core: training field classifier: %w", fieldErr)
	}
	if detErr != nil {
		return nil, fmt.Errorf("core: training detector: %w", detErr)
	}
	if termErr != nil {
		return nil, fmt.Errorf("core: training terminal classifier: %w", termErr)
	}
	return m, nil
}

// modelCache memoizes trained bundles per ModelParams for the life of the
// process. Entries are created under the map lock but trained outside it
// (sync.Once per entry), so two pipelines racing on the same params train
// once and one of them waits; pipelines with different params train
// concurrently. Training is deterministic, so a cached error is as
// permanent as a cached model. The cache never evicts: a bundle is a few
// megabytes and the set of distinct (seed, params) pairs a process uses is
// small — the 30-worker farm, a resume run, and the bench harness all hit
// the same entry.
var modelCache struct {
	sync.Mutex
	entries map[ModelParams]*modelEntry
}

type modelEntry struct {
	once   sync.Once
	models *Models
	err    error
}

// SharedModels returns the process-wide bundle for params, training it on
// first use. The returned bundle is shared: callers must treat it as
// immutable.
func SharedModels(params ModelParams) (*Models, error) {
	modelCache.Lock()
	if modelCache.entries == nil {
		modelCache.entries = map[ModelParams]*modelEntry{}
	}
	e := modelCache.entries[params]
	if e == nil {
		e = &modelEntry{}
		modelCache.entries[params] = e
	}
	modelCache.Unlock()
	e.once.Do(func() {
		e.models, e.err = TrainModels(params)
	})
	return e.models, e.err
}

// ResetModelCache drops every memoized bundle, forcing the next
// SharedModels call to retrain. It exists for cold-build benchmarks and
// memory-sensitive tests; production code never needs it.
func ResetModelCache() {
	modelCache.Lock()
	modelCache.entries = nil
	modelCache.Unlock()
}
