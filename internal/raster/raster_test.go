package raster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndFill(t *testing.T) {
	im := New(10, 5, Gray)
	if im.W != 10 || im.H != 5 || len(im.Pix) != 50 {
		t.Fatalf("bad dimensions: %dx%d len %d", im.W, im.H, len(im.Pix))
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 10; x++ {
			if im.At(x, y) != Gray {
				t.Fatalf("pixel (%d,%d) = %v, want gray", x, y, im.At(x, y))
			}
		}
	}
	im.Fill(R(2, 1, 3, 2), Red)
	if im.At(2, 1) != Red || im.At(4, 2) != Red {
		t.Error("Fill did not cover rect")
	}
	if im.At(1, 1) != Gray || im.At(5, 1) != Gray {
		t.Error("Fill exceeded rect")
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	im := New(4, 4, Black)
	if im.At(-1, 0) != White || im.At(0, 99) != White {
		t.Error("out-of-bounds At should return White")
	}
	im.Set(-1, -1, Red) // must not panic
	im.Set(99, 99, Red)
	im.Fill(R(-5, -5, 100, 100), Blue) // clipped fill must not panic
	if im.At(0, 0) != Blue {
		t.Error("clipped fill missed in-bounds pixels")
	}
}

func TestOutline(t *testing.T) {
	im := New(10, 10, White)
	im.Outline(R(2, 2, 5, 5), Black)
	if im.At(2, 2) != Black || im.At(6, 6) != Black || im.At(2, 6) != Black {
		t.Error("outline corners missing")
	}
	if im.At(3, 3) != White {
		t.Error("outline filled interior")
	}
}

func TestBlitAndSub(t *testing.T) {
	src := New(3, 3, Red)
	dst := New(10, 10, White)
	dst.Blit(src, 4, 4)
	if dst.At(4, 4) != Red || dst.At(6, 6) != Red {
		t.Error("blit missing")
	}
	if dst.At(3, 4) != White || dst.At(7, 4) != White {
		t.Error("blit overflow")
	}
	sub := dst.Sub(R(4, 4, 3, 3))
	for _, p := range sub.Pix {
		if p != Red {
			t.Fatal("sub extracted wrong region")
		}
	}
	// Mutating sub must not affect dst.
	sub.Set(0, 0, Green)
	if dst.At(4, 4) != Red {
		t.Error("Sub aliases parent pixels")
	}
}

func TestBlitClipped(t *testing.T) {
	src := New(5, 5, Blue)
	dst := New(4, 4, White)
	dst.Blit(src, 2, 2) // extends past edges; must not panic
	if dst.At(3, 3) != Blue {
		t.Error("clipped blit lost in-bounds pixels")
	}
}

func TestHistogram(t *testing.T) {
	im := New(4, 4, White)
	im.Fill(R(0, 0, 2, 4), Red)
	h := im.Histogram()
	if h[Red] != 8 || h[White] != 8 {
		t.Errorf("histogram = red %d white %d, want 8/8", h[Red], h[White])
	}
}

func TestDownsample(t *testing.T) {
	im := New(20, 20, White)
	im.Fill(R(0, 0, 10, 20), Navy)
	th := im.Downsample(2, 1)
	if th.At(0, 0) != Navy || th.At(1, 0) != White {
		t.Errorf("downsample = %v %v", th.At(0, 0), th.At(1, 0))
	}
	// Degenerate target sizes must not panic.
	_ = im.Downsample(1, 1)
	empty := New(0, 0, White)
	_ = empty.Downsample(4, 4)
}

func TestRectOps(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 10, 10)
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	inter := a.Intersect(b)
	if inter != R(5, 5, 5, 5) {
		t.Errorf("Intersect = %v", inter)
	}
	u := a.Union(b)
	if u != R(0, 0, 15, 15) {
		t.Errorf("Union = %v", u)
	}
	if got := a.IoU(a); got != 1.0 {
		t.Errorf("self IoU = %v", got)
	}
	c := R(100, 100, 5, 5)
	if a.Intersects(c) || a.IoU(c) != 0 {
		t.Error("disjoint rects should not intersect")
	}
	if !a.Contains(0, 0) || a.Contains(10, 10) {
		t.Error("Contains boundary wrong (half-open)")
	}
	if a.CenterX() != 5 || a.CenterY() != 5 {
		t.Error("center wrong")
	}
}

func TestRectIoUSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by int8, aw, ah, bw, bh uint8) bool {
		a := R(int(ax), int(ay), int(aw), int(ah))
		b := R(int(bx), int(by), int(bw), int(bh))
		iou1, iou2 := a.IoU(b), b.IoU(a)
		if iou1 != iou2 {
			return false
		}
		return iou1 >= 0 && iou1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDrawString(t *testing.T) {
	im := New(100, 12, White)
	end := im.DrawString("HI", 2, 2, Black)
	if end != 2+2*AdvanceX {
		t.Errorf("end x = %d", end)
	}
	// 'H' leftmost column is solid: pixels at x=2, y=2..8.
	for y := 2; y < 2+GlyphH; y++ {
		if im.At(2, y) != Black {
			t.Errorf("H left stroke missing at y=%d", y)
		}
	}
	// Space between glyphs stays background.
	if im.At(2+GlyphW, 4) != White {
		t.Error("inter-glyph gap painted")
	}
}

func TestGlyphCoverage(t *testing.T) {
	must := "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.,:-/@?!()&*#$%+='\""
	for _, r := range must {
		if !HasGlyph(r) {
			t.Errorf("font missing glyph %q", r)
		}
	}
	if !HasGlyph('a') || !HasGlyph('z') {
		t.Error("lowercase should fold to uppercase glyphs")
	}
	if !HasGlyph(' ') {
		t.Error("space must be drawable")
	}
}

func TestGlyphsDistinct(t *testing.T) {
	// Every pair of glyphs must differ in at least 2 pixels so OCR matching
	// by Hamming distance is well-posed.
	runes := GlyphRunes()
	bitmap := func(r rune) [7]string { g, _ := Glyph(r); return g }
	dist := func(a, b [7]string) int {
		d := 0
		for i := 0; i < 7; i++ {
			for j := 0; j < 5; j++ {
				if a[i][j] != b[i][j] {
					d++
				}
			}
		}
		return d
	}
	for i := 0; i < len(runes); i++ {
		for j := i + 1; j < len(runes); j++ {
			if d := dist(bitmap(runes[i]), bitmap(runes[j])); d < 2 {
				t.Errorf("glyphs %q and %q differ by only %d pixels", runes[i], runes[j], d)
			}
		}
	}
}

func TestWrapString(t *testing.T) {
	lines := WrapString("the quick brown fox jumps", 10*AdvanceX)
	for _, l := range lines {
		if len(l) > 10 {
			t.Errorf("line %q exceeds 10 chars", l)
		}
	}
	joined := ""
	for _, l := range lines {
		joined += l + " "
	}
	for _, w := range []string{"the", "quick", "brown", "fox", "jumps"} {
		if !contains(lines, w) && !containsSub(joined, w) {
			t.Errorf("word %q lost in wrap", w)
		}
	}
	// Over-long word hard-splits rather than looping forever.
	lines = WrapString("abcdefghijklmnop", 4*AdvanceX)
	if len(lines) < 4 {
		t.Errorf("long word should hard-split, got %v", lines)
	}
	// Tiny maxW must not loop or panic.
	_ = WrapString("x y", 1)
}

func contains(list []string, s string) bool {
	for _, l := range list {
		if l == s {
			return true
		}
	}
	return false
}

func containsSub(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (stringIndex(s, sub) >= 0))
}

func stringIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		w, h := rng.Intn(60)+1, rng.Intn(40)+1
		im := New(w, h, White)
		for i := range im.Pix {
			im.Pix[i] = Color(rng.Intn(int(NumColors)))
		}
		data := Encode(im)
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if back.W != w || back.H != h {
			t.Fatalf("dimensions changed: %dx%d -> %dx%d", w, h, back.W, back.H)
		}
		for i := range im.Pix {
			if im.Pix[i] != back.Pix[i] {
				t.Fatal("pixel data changed in round trip")
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("not an image"),
		[]byte("PXI1"),
		append([]byte("PXI1"), make([]byte, 8)...), // zero dims
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%q) should fail", c)
		}
	}
	// Truncated pixel data.
	im := New(8, 8, Red)
	data := Encode(im)
	if _, err := Decode(data[:len(data)-2]); err == nil {
		t.Error("truncated data should fail")
	}
}

func TestDataURIRoundTrip(t *testing.T) {
	im := New(9, 4, Teal)
	im.DrawString("OK", 0, 0, Black)
	uri := EncodeDataURI(im)
	back, err := DecodeDataURI(uri)
	if err != nil {
		t.Fatalf("DecodeDataURI: %v", err)
	}
	if back.W != im.W || back.H != im.H {
		t.Error("data URI round trip changed dimensions")
	}
	if _, err := DecodeDataURI("data:image/png;base64,xxxx"); err == nil {
		t.Error("wrong mime type should fail")
	}
}

func TestParseColor(t *testing.T) {
	if ParseColor("navy") != Navy || ParseColor("NAVY") != Navy {
		t.Error("ParseColor navy failed")
	}
	if ParseColor("nonexistent") != Black {
		t.Error("unknown color should default to black")
	}
	for c := Color(0); c < NumColors; c++ {
		if ParseColor(c.String()) != c {
			t.Errorf("round trip failed for %v", c)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	im := New(800, 600, White)
	im.Fill(R(100, 100, 400, 300), Navy)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(im)
	}
}

func BenchmarkDrawString(b *testing.B) {
	im := New(800, 600, White)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		im.DrawString("Please enter your email address and password", 10, 10, Black)
	}
}
