package analysis_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/brands"
	"repro/internal/captcha"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/fieldspec"
	"repro/internal/site"
	"repro/internal/termclass"
)

// The integration pipeline: a 400-site corpus crawled end-to-end, shared by
// every test in this package.
var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeErr  error
)

const pipeSites = 400

func pipeline(t testing.TB) *core.Pipeline {
	pipeOnce.Do(func() {
		pipe, pipeErr = core.NewPipeline(core.Options{NumSites: pipeSites, Seed: 11, Workers: 16})
		if pipeErr == nil {
			pipe.Crawl()
		}
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

// truthByID indexes corpus ground truth.
func truthByID(p *core.Pipeline) map[string]site.Truth {
	out := map[string]site.Truth{}
	for _, s := range p.Corpus.Sites {
		out[s.ID] = s.Truth
	}
	return out
}

func TestESLD(t *testing.T) {
	cases := map[string]string{
		"http://a.b.example.com/x":  "example.com",
		"http://example.com/":       "example.com",
		"login.chase-3-1.test":      "chase-3-1.test",
		"http://host:8080/p":        "host",
		"v2.netflix-c7.test":        "netflix-c7.test",
		"http://www.google.com/abc": "google.com",
	}
	for in, want := range cases {
		if got := analysis.ESLD(in); got != want {
			t.Errorf("analysis.ESLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPipelineCrawledEverything(t *testing.T) {
	p := pipeline(t)
	if len(p.Logs) != pipeSites {
		t.Fatalf("crawled %d sites, want %d", len(p.Logs), pipeSites)
	}
	errors := 0
	for _, l := range p.Logs {
		if l.Outcome == crawler.OutcomeError {
			errors++
		}
		if l.SiteID == "" {
			t.Fatal("metadata not attached")
		}
	}
	if errors > 0 {
		t.Errorf("%d sessions errored", errors)
	}
}

func TestSummaryTable1Shape(t *testing.T) {
	p := pipeline(t)
	s := analysis.Summarize(p.Feed, p.Logs)
	if s.FilteredURLs != pipeSites {
		t.Errorf("filtered = %d, want %d", s.FilteredURLs, pipeSites)
	}
	if s.SeedURLs <= s.FilteredURLs {
		t.Errorf("seeds (%d) should exceed filtered (%d) — the feed carries noise", s.SeedURLs, s.FilteredURLs)
	}
	// The crawler visits more URLs than sites (multi-page flows), as in
	// Table 1 (66,072 crawled URLs from 51,859 sites).
	if s.CrawledURLs <= s.FilteredURLs {
		t.Errorf("crawled URLs (%d) should exceed sites (%d)", s.CrawledURLs, s.FilteredURLs)
	}
	if s.CrawledSLDs == 0 || s.CrawledSLDs > s.CrawledURLs {
		t.Errorf("SLDs = %d", s.CrawledSLDs)
	}
}

func TestCategoryAndBrandHistograms(t *testing.T) {
	p := pipeline(t)
	cats := analysis.CategoryCounts(p.Logs)
	if cats.Total() != pipeSites {
		t.Errorf("category total = %d", cats.Total())
	}
	// Online/Cloud and Financial should lead (Table 2).
	top := cats.SortedByCount()
	if len(top) < 5 {
		t.Fatalf("only %d categories", len(top))
	}
	lead := map[string]bool{top[0].Key: true, top[1].Key: true}
	if !lead[string(brands.OnlineCloud)] && !lead[string(brands.Financial)] {
		t.Errorf("leading categories = %v", top[:2])
	}
	brandsH := analysis.BrandCounts(p.Logs)
	if got := brandsH.SortedByCount()[0].Key; got != "Office365" {
		t.Errorf("top brand = %q, want Office365", got)
	}
}

func TestMultiPageAgainstTruth(t *testing.T) {
	p := pipeline(t)
	truths := truthByID(p)
	agree, total := 0, 0
	truthMulti, measuredMulti := 0, 0
	for _, l := range p.Logs {
		tr := truths[l.SiteID]
		m := analysis.IsMultiPage(l)
		total++
		if tr.MultiPage {
			truthMulti++
		}
		if m {
			measuredMulti++
		}
		// Measurement can undercount (crawler stuck at a CAPTCHA) but
		// rarely overcounts (double login adds a revisit of the same page,
		// which is a legitimate extra page as the paper also sees).
		if m == tr.MultiPage {
			agree++
		}
	}
	if float64(agree)/float64(total) < 0.85 {
		t.Errorf("multi-page agreement = %d/%d (truth %d vs measured %d)",
			agree, total, truthMulti, measuredMulti)
	}
	rate := float64(measuredMulti) / float64(total)
	if math.Abs(rate-0.45) > 0.12 {
		t.Errorf("measured multi rate = %.2f, want near 0.45", rate)
	}
}

func TestPageCountHistogramShape(t *testing.T) {
	p := pipeline(t)
	h := analysis.PageCountHistogram(p.Logs)
	if len(h) == 0 {
		t.Fatal("empty histogram")
	}
	// 2- and 3-page flows dominate (Figure 8).
	if h[2]+h[3] <= h[4]+h[5] {
		t.Errorf("histogram shape wrong: %v", h)
	}
}

func TestFieldDistributionShape(t *testing.T) {
	p := pipeline(t)
	d := analysis.FieldsAcrossPages(p.Logs)
	pw := d.PerType.Get(string(fieldspec.Password))
	em := d.PerType.Get(string(fieldspec.Email))
	if pw == 0 || em == 0 {
		t.Fatalf("password=%d email=%d", pw, em)
	}
	// Password and Email are the two most-requested types (Figure 7).
	for _, row := range d.PerType.SortedByCount()[:2] {
		if row.Key != string(fieldspec.Password) && row.Key != string(fieldspec.Email) {
			t.Errorf("top-2 field types = %v", d.PerType.SortedByCount()[:3])
		}
	}
	if d.PerGroup.Get(string(fieldspec.GroupLogin)) == 0 {
		t.Error("login group empty")
	}
}

func TestFieldsPerStageShape(t *testing.T) {
	p := pipeline(t)
	rows := analysis.FieldsPerStage(p.Logs)
	if len(rows) == 0 {
		t.Fatal("no stage data")
	}
	// Login data concentrates in stage 1; financial data in later stages
	// (Figure 9).
	stagePct := func(ty fieldspec.Type, stage int) float64 {
		for _, r := range rows {
			if r.Type == ty && r.Stage == stage {
				return r.Pct
			}
		}
		return 0
	}
	if stagePct(fieldspec.Password, 1) <= stagePct(fieldspec.Password, 3) {
		t.Errorf("password: stage1 %.1f%% vs stage3 %.1f%%", stagePct(fieldspec.Password, 1), stagePct(fieldspec.Password, 3))
	}
	cardLate := stagePct(fieldspec.Card, 2) + stagePct(fieldspec.Card, 3) + stagePct(fieldspec.Card, 4) + stagePct(fieldspec.Card, 5)
	if cardLate <= stagePct(fieldspec.Card, 1) {
		t.Errorf("card data should concentrate after stage 1: late %.1f vs first %.1f", cardLate, stagePct(fieldspec.Card, 1))
	}
}

func TestObfuscationRates(t *testing.T) {
	p := pipeline(t)
	r := analysis.Obfuscation(p.Logs)
	if math.Abs(r.OCRRate-0.27) > 0.12 {
		t.Errorf("OCR rate = %.2f, want near 0.27", r.OCRRate)
	}
	if r.VisualSubmitRate == 0 {
		t.Error("no visual submits measured")
	}
	if math.Abs(r.VisualSubmitRate-0.12) > 0.08 {
		t.Errorf("visual-submit rate = %.2f, want near 0.12", r.VisualSubmitRate)
	}
}

func TestKeyloggingTiersAgainstTruth(t *testing.T) {
	p := pipeline(t)
	truths := truthByID(p)
	k := analysis.Keylogging(p.Logs)
	var t1, t2, t3 int
	for _, l := range p.Logs {
		switch tier := truths[l.SiteID].KeyloggerTier; {
		case tier >= 1:
			t1++
			if tier >= 2 {
				t2++
			}
			if tier == 3 {
				t3++
			}
		}
	}
	if k.Monitoring == 0 || t1 == 0 {
		t.Fatalf("no keylogging measured (truth %d)", t1)
	}
	// Monitoring is measurable whenever typing happened; allow slack for
	// sites where the crawler never typed (stuck CAPTCHAs etc.).
	if float64(k.Monitoring) < 0.7*float64(t1) {
		t.Errorf("monitoring = %d vs truth %d", k.Monitoring, t1)
	}
	if k.ImmediateRequest < k.DataExfiltrated {
		t.Errorf("tier nesting violated: %+v", k)
	}
	if k.Monitoring < k.ImmediateRequest {
		t.Errorf("tier nesting violated: %+v", k)
	}
}

func TestDoubleLoginAgainstTruth(t *testing.T) {
	p := pipeline(t)
	truths := truthByID(p)
	truthN := 0
	for _, l := range p.Logs {
		if truths[l.SiteID].DoubleLogin {
			truthN++
		}
	}
	got := analysis.DoubleLoginCount(p.Logs)
	// Every truth double-login site the crawler passed should be counted;
	// small corpora may have very few.
	if truthN > 0 && got == 0 {
		t.Errorf("double login: truth %d, measured 0", truthN)
	}
	if got > truthN+3 {
		t.Errorf("double login overcounted: truth %d, measured %d", truthN, got)
	}
}

func TestTerminationAgainstTruth(t *testing.T) {
	p := pipeline(t)
	truths := truthByID(p)
	clf, err := termclass.Train(99)
	if err != nil {
		t.Fatal(err)
	}
	tc := analysis.Termination(p.Logs, clf)
	var truthRedirect, truthFinal int
	for _, l := range p.Logs {
		switch truths[l.SiteID].Termination {
		case site.TermRedirectLegit:
			truthRedirect++
		case site.TermSuccess, site.TermCustomError, site.TermAwareness, site.TermHTTPError:
			truthFinal++
		}
	}
	if truthRedirect > 0 && tc.RedirectSites == 0 {
		t.Error("no redirects measured")
	}
	if float64(tc.RedirectSites) < 0.7*float64(truthRedirect) {
		t.Errorf("redirects = %d vs truth %d", tc.RedirectSites, truthRedirect)
	}
	// Redirect targets include brand domains (Table 4).
	if tc.RedirectSites > 0 && len(tc.RedirectDomains.Keys()) == 0 {
		t.Error("no redirect domains recorded")
	}
	if truthFinal > 2 && tc.FinalNoInputSites == 0 {
		t.Errorf("no terminal pages measured (truth %d)", truthFinal)
	}
	// Classified categories must be a subset of the known labels.
	for _, k := range tc.ByCategory.Keys() {
		switch k {
		case termclass.Success, termclass.CustomErr, termclass.HTTPError, termclass.Awareness, termclass.Other:
		default:
			t.Errorf("unexpected termination category %q", k)
		}
	}
}

func TestClickThroughAgainstTruth(t *testing.T) {
	p := pipeline(t)
	truths := truthByID(p)
	ct := analysis.ClickThrough(p.Logs)
	truthFirst := 0
	for _, l := range p.Logs {
		if truths[l.SiteID].ClickThroughFirst {
			truthFirst++
		}
	}
	if truthFirst > 0 && ct.FirstPage == 0 {
		t.Errorf("click-through first: truth %d, measured 0", truthFirst)
	}
	if ct.Total < ct.FirstPage || ct.Total < ct.Internal {
		t.Errorf("click-through counts inconsistent: %+v", ct)
	}
	// Note: CAPTCHA verification pages also read as click-through (no
	// inputs then inputs), so measured >= truth is expected.
	if ct.FirstPage < truthFirst {
		t.Logf("note: click-through first measured %d < truth %d", ct.FirstPage, truthFirst)
	}
}

func TestCaptchasAgainstTruth(t *testing.T) {
	p := pipeline(t)
	truths := truthByID(p)
	cc := analysis.Captchas(p.Logs, p.CaptchaAnalysisOptions())
	var truthKnown, truthRecap, truthHcap int
	for _, l := range p.Logs {
		tr := truths[l.SiteID]
		if !tr.HasCaptcha {
			continue
		}
		switch tr.CaptchaProvider {
		case captcha.ProviderRecaptcha:
			truthKnown++
			truthRecap++
		case captcha.ProviderHcaptcha:
			truthKnown++
			truthHcap++
		}
	}
	if truthKnown > 0 && cc.KnownTotal == 0 {
		t.Errorf("known captchas: truth %d, measured 0", truthKnown)
	}
	if cc.Recaptcha != truthRecap {
		t.Errorf("recaptcha = %d, truth %d", cc.Recaptcha, truthRecap)
	}
	if cc.Hcaptcha != truthHcap {
		t.Errorf("hcaptcha = %d, truth %d", cc.Hcaptcha, truthHcap)
	}
	if cc.Total < cc.KnownTotal {
		t.Errorf("totals inconsistent: %+v", cc)
	}
}

func TestTwoFactorAgainstTruth(t *testing.T) {
	p := pipeline(t)
	truths := truthByID(p)
	tf := analysis.TwoFactor(p.Logs)
	truthOTP := 0
	for _, l := range p.Logs {
		if truths[l.SiteID].TwoFactor {
			truthOTP++
		}
	}
	if tf.CodeFieldSites == 0 {
		t.Fatal("no code fields measured")
	}
	if tf.OTPSites > tf.CodeFieldSites {
		t.Errorf("OTP (%d) > code sites (%d)", tf.OTPSites, tf.CodeFieldSites)
	}
	if truthOTP > 1 && tf.OTPSites == 0 {
		t.Errorf("OTP sites: truth %d, measured 0", truthOTP)
	}
}

func TestCloningTable3(t *testing.T) {
	p := pipeline(t)
	results := analysis.Cloning(p.Logs, p.Gallery, brands.Table3Brands(), 50)
	if len(results) != 5 {
		t.Fatalf("got %d brands", len(results))
	}
	sawSamples := false
	for _, r := range results {
		if r.Sampled > 0 {
			sawSamples = true
			if r.NonClonePct < 0 || r.NonClonePct > 100 {
				t.Errorf("%s: pct = %f", r.Brand, r.NonClonePct)
			}
		}
	}
	if !sawSamples {
		t.Error("no Table 3 brand samples found in corpus")
	}
}

func TestClusterCampaigns(t *testing.T) {
	p := pipeline(t)
	n := analysis.ClusterCampaigns(p.Logs)
	if n == 0 {
		t.Fatal("no clusters")
	}
	if n > len(p.Logs) {
		t.Errorf("more clusters (%d) than sites (%d)", n, len(p.Logs))
	}
	// Clusters should be far fewer than sites (campaigns share design).
	if float64(n) > 0.9*float64(len(p.Logs)) {
		t.Errorf("clustering found %d clusters for %d sites — designs not shared?", n, len(p.Logs))
	}
}
