// Package captcha renders the CAPTCHA challenge widgets that appear in the
// synthetic phishing corpus, replacing the public CAPTCHA image dataset the
// paper fine-tunes its detector on. Eight visual classes are produced,
// matching Table 5: six text-based CAPTCHA styles (distorted character
// strings over different noise backgrounds) and two visual styles (an
// image-grid challenge and an "I'm not a robot" checkbox widget). Each style
// has a stable overall geometry with per-instance randomness, exactly the
// regime an object detector is trained for.
package captcha

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/raster"
)

// Kind identifies a CAPTCHA class.
type Kind int

// The CAPTCHA classes of Table 5.
const (
	Text1   Kind = iota // clean text on white with dot noise
	Text2               // text with strike-through lines on light gray
	Text3               // text over colored vertical stripes
	Text4               // vertically jittered ("wavy") text
	Text5               // light text on dark background
	Text6               // text under a grid overlay
	Visual1             // 3x3 image-selection grid
	Visual2             // "I'm not a robot" checkbox widget
	NumKinds
)

// String returns the Table 5 name of the kind.
func (k Kind) String() string {
	switch k {
	case Text1, Text2, Text3, Text4, Text5, Text6:
		return fmt.Sprintf("text-type%d", int(k)+1)
	case Visual1:
		return "visual-type1"
	case Visual2:
		return "visual-type2"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsText reports whether k is a text-based CAPTCHA.
func (k Kind) IsText() bool { return k >= Text1 && k <= Text6 }

// IsVisual reports whether k is a visual CAPTCHA.
func (k Kind) IsVisual() bool { return k == Visual1 || k == Visual2 }

// TextKinds returns the six text-based kinds.
func TextKinds() []Kind { return []Kind{Text1, Text2, Text3, Text4, Text5, Text6} }

// VisualKinds returns the two visual kinds.
func VisualKinds() []Kind { return []Kind{Visual1, Visual2} }

// AllKinds returns every kind.
func AllKinds() []Kind { return append(TextKinds(), VisualKinds()...) }

const challengeChars = "ABCDEFGHJKLMNPQRSTUVWXYZ23456789"

// Challenge returns a random challenge string of n characters.
func Challenge(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(challengeChars[rng.Intn(len(challengeChars))])
	}
	return b.String()
}

// Render draws a CAPTCHA of the given kind and returns its image along with
// the challenge text (empty for visual kinds). Geometry varies slightly with
// the rng so no two instances are pixel-identical.
func Render(kind Kind, rng *rand.Rand) (*raster.Image, string) {
	switch kind {
	case Text1:
		return renderText1(rng)
	case Text2:
		return renderText2(rng)
	case Text3:
		return renderText3(rng)
	case Text4:
		return renderText4(rng)
	case Text5:
		return renderText5(rng)
	case Text6:
		return renderText6(rng)
	case Visual1:
		return renderVisual1(rng), ""
	case Visual2:
		return renderVisual2(rng), ""
	default:
		return raster.New(60, 24, raster.White), ""
	}
}

func textBase(rng *rand.Rand, bg raster.Color) (*raster.Image, string, int, int) {
	text := Challenge(rng, 5+rng.Intn(3))
	w := raster.StringWidth(text) + 16 + rng.Intn(8)
	h := 26 + rng.Intn(6)
	img := raster.New(w, h, bg)
	img.Outline(raster.R(0, 0, w, h), raster.Gray)
	x := 8 + rng.Intn(4)
	y := (h - raster.GlyphH) / 2
	return img, text, x, y
}

func renderText1(rng *rand.Rand) (*raster.Image, string) {
	img, text, x, y := textBase(rng, raster.White)
	img.DrawString(text, x, y, raster.Black)
	for i := 0; i < 24; i++ {
		img.Set(1+rng.Intn(img.W-2), 1+rng.Intn(img.H-2), raster.Gray)
	}
	return img, text
}

func renderText2(rng *rand.Rand) (*raster.Image, string) {
	img, text, x, y := textBase(rng, raster.LightGray)
	img.DrawString(text, x, y, raster.Black)
	// Strike-through lines.
	for l := 0; l < 2; l++ {
		ly := y + 1 + rng.Intn(raster.GlyphH)
		for px := 2; px < img.W-2; px++ {
			img.Set(px, ly, raster.Maroon)
		}
	}
	return img, text
}

func renderText3(rng *rand.Rand) (*raster.Image, string) {
	img, text, x, y := textBase(rng, raster.White)
	stripeColors := []raster.Color{raster.Yellow, raster.Pink, raster.Teal}
	for sx := 1; sx < img.W-1; sx += 4 {
		c := stripeColors[(sx/4)%len(stripeColors)]
		img.Fill(raster.R(sx, 1, 2, img.H-2), c)
	}
	img.DrawString(text, x, y, raster.Black)
	return img, text
}

func renderText4(rng *rand.Rand) (*raster.Image, string) {
	text := Challenge(rng, 5+rng.Intn(2))
	w := len(text)*raster.AdvanceX + 20
	h := 32 + rng.Intn(4)
	img := raster.New(w, h, raster.White)
	img.Outline(raster.R(0, 0, w, h), raster.Gray)
	x := 8
	for i, r := range text {
		jitter := rng.Intn(9) - 4
		img.DrawGlyph(r, x+i*raster.AdvanceX, h/2-raster.GlyphH/2+jitter, raster.Black)
	}
	return img, text
}

func renderText5(rng *rand.Rand) (*raster.Image, string) {
	img, text, x, y := textBase(rng, raster.Navy)
	img.DrawString(text, x, y, raster.Yellow)
	return img, text
}

func renderText6(rng *rand.Rand) (*raster.Image, string) {
	img, text, x, y := textBase(rng, raster.White)
	img.DrawString(text, x, y, raster.Black)
	// Grid overlay.
	for gx := 3; gx < img.W-1; gx += 7 {
		for py := 1; py < img.H-1; py++ {
			if img.At(gx, py) == raster.White {
				img.Set(gx, py, raster.LightGray)
			}
		}
	}
	for gy := 3; gy < img.H-1; gy += 7 {
		for px := 1; px < img.W-1; px++ {
			if img.At(px, gy) == raster.White {
				img.Set(px, gy, raster.LightGray)
			}
		}
	}
	return img, text
}

// renderVisual1 draws a 3x3 tile-selection grid with a header bar.
func renderVisual1(rng *rand.Rand) *raster.Image {
	tile := 22 + rng.Intn(6)
	gap := 2
	w := 3*tile + 4*gap
	headerH := 14
	h := headerH + 3*tile + 4*gap
	img := raster.New(w, h, raster.White)
	img.Outline(raster.R(0, 0, w, h), raster.Gray)
	img.Fill(raster.R(1, 1, w-2, headerH), raster.Blue)
	// Image-selection grids share a recognizable structure across
	// deployments (street scenes, crosswalks, ...): a mostly-stable tile
	// palette with a couple of per-instance variations, which is what makes
	// the paper's pHash-based exemplar verification workable.
	basePattern := [9]raster.Color{
		raster.Green, raster.Olive, raster.Teal,
		raster.Brown, raster.Green, raster.Gray,
		raster.Olive, raster.Teal, raster.Green,
	}
	altColors := []raster.Color{raster.Orange, raster.Gray, raster.Brown}
	varied := [2]int{rng.Intn(9), rng.Intn(9)}
	for ty := 0; ty < 3; ty++ {
		for tx := 0; tx < 3; tx++ {
			idx := ty*3 + tx
			c := basePattern[idx]
			if idx == varied[0] || idx == varied[1] {
				c = altColors[rng.Intn(len(altColors))]
			}
			x := gap + tx*(tile+gap)
			y := headerH + gap + ty*(tile+gap)
			img.Fill(raster.R(x, y, tile, tile), c)
		}
	}
	return img
}

// renderVisual2 draws the checkbox widget: a wide light box with a small
// square checkbox on the left and label text.
func renderVisual2(rng *rand.Rand) *raster.Image {
	w := 180 + rng.Intn(30)
	h := 30 + rng.Intn(6)
	img := raster.New(w, h, raster.LightGray)
	img.Outline(raster.R(0, 0, w, h), raster.Gray)
	// Checkbox.
	cb := raster.R(8, h/2-6, 12, 12)
	img.Fill(cb, raster.White)
	img.Outline(cb, raster.Gray)
	img.DrawString("I'M NOT A ROBOT", 28, h/2-raster.GlyphH/2, raster.Black)
	// Badge on the right.
	img.Fill(raster.R(w-26, h/2-9, 18, 18), raster.Blue)
	return img
}

// Provider identifies which CAPTCHA implementation a page embeds, for the
// known-vs-custom prevalence measurement (Section 5.3.2).
type Provider string

// Known third-party CAPTCHA providers plus the custom marker.
const (
	ProviderRecaptcha Provider = "recaptcha"
	ProviderHcaptcha  Provider = "hcaptcha"
	ProviderCustom    Provider = "custom"
	ProviderNone      Provider = ""
)

// ScriptURL returns the script src a page using the given known provider
// would include; DOM analysis detects these (Section 5.3.2 "known
// CAPTCHAs").
func ScriptURL(p Provider) string {
	switch p {
	case ProviderRecaptcha:
		return "https://www.google.com/recaptcha/api.js"
	case ProviderHcaptcha:
		return "https://js.hcaptcha.com/1/api.js"
	default:
		return ""
	}
}

// DetectProvider inspects a script URL and returns the provider it belongs
// to, or ProviderNone.
func DetectProvider(src string) Provider {
	switch {
	case strings.Contains(src, "google.com/recaptcha") || strings.Contains(src, "gstatic.com/recaptcha"):
		return ProviderRecaptcha
	case strings.Contains(src, "hcaptcha.com"):
		return ProviderHcaptcha
	default:
		return ProviderNone
	}
}
