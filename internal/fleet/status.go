package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// WorkerStatus is one worker's row in the fleet-wide progress view.
type WorkerStatus struct {
	Name string `json:"name"`
	// Lease is the held range ("[200,300)") or "" when idle.
	Lease   string `json:"lease,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Done counts sessions finished in the current lease (from the last
	// heartbeat).
	Done int `json:"done"`
	// LastSeenMs is how long ago the worker last spoke to the
	// coordinator.
	LastSeenMs int64 `json:"lastSeenMs"`
}

// Status is the fleet-wide progress snapshot served at the coordinator's
// /status endpoint: URL and lease totals, per-worker lease state, ETA, and
// the merged per-stage latency percentiles (accepted shards plus the live
// heartbeat snapshots of in-flight leases).
type Status struct {
	TotalURLs int `json:"totalUrls"`
	// DoneURLs counts journaled sessions: recovered at startup, in
	// accepted shards, and reported live by in-flight leases.
	DoneURLs int `json:"doneUrls"`
	// Recovered is the startup-scan share of DoneURLs (the resume case).
	Recovered int `json:"recovered"`
	// FastPathed counts sessions the triage funnel resolved without a full
	// browser crawl (accepted shards plus live leases); included in
	// DoneURLs.
	FastPathed    int            `json:"fastPathed,omitempty"`
	Leases        int            `json:"leases"`
	LeasesDone    int            `json:"leasesDone"`
	LeasesActive  int            `json:"leasesActive"`
	LeasesPending int            `json:"leasesPending"`
	ElapsedMs     int64          `json:"elapsedMs"`
	EtaMs         int64          `json:"etaMs"`
	SitesPerDay   float64        `json:"sitesPerDay"`
	Workers       []WorkerStatus `json:"workers"`
	// Stages is the fleet-wide per-stage latency view; percentiles are
	// read off the merged streaming histograms.
	Stages []metrics.StageStat `json:"stages,omitempty"`
}

// Status snapshots the fleet-wide progress. Safe to call from the status
// server's goroutines while the protocol handlers are running.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := metrics.Now()
	st := Status{
		TotalURLs: len(c.cfg.URLs),
		Recovered: len(c.completed),
		Leases:    len(c.leases),
		ElapsedMs: c.start.Elapsed().Milliseconds(),
	}
	live := 0
	for _, ls := range c.leases {
		switch ls.state {
		case leaseDone:
			st.LeasesDone++
		case leaseActive:
			st.LeasesActive++
		default:
			st.LeasesPending++
		}
	}
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	stages := metrics.MergeStageStats(nil, c.acceptedSt.Stages)
	for _, name := range names {
		w := c.workers[name]
		ws := WorkerStatus{
			Name:       w.name,
			Done:       w.progress.Done,
			LastSeenMs: now.Sub(w.lastSeen).Milliseconds(),
		}
		if w.leaseID >= 0 {
			ls := c.leases[w.leaseID]
			ws.Lease = Lease{Start: ls.start, End: ls.end}.Range()
			ws.Attempt = w.attempt
			live += w.progress.Done
			st.FastPathed += w.progress.FastPathed
			stages = metrics.MergeStageStats(stages, w.progress.Stages)
		}
		st.Workers = append(st.Workers, ws)
	}
	st.FastPathed += c.acceptedSt.FastPathed
	st.Stages = stages
	st.DoneURLs = len(c.completed) + c.crawled + live
	crawledNow := c.crawled + live
	elapsed := c.start.Elapsed()
	if crawledNow > 0 && elapsed > 0 {
		st.SitesPerDay = float64(crawledNow) / elapsed.Seconds() * 86400
		if rem := st.TotalURLs - st.DoneURLs; rem > 0 {
			st.EtaMs = (elapsed.Milliseconds() / int64(crawledNow)) * int64(rem)
		}
	}
	return st
}

// String renders the multi-line plain-text fleet status: one summary line
// in the style of the single-process progress line, then one line per
// worker.
func (s Status) String() string {
	var b strings.Builder
	pct := 0.0
	if s.TotalURLs > 0 {
		pct = 100 * float64(s.DoneURLs) / float64(s.TotalURLs)
	}
	fmt.Fprintf(&b, "fleet: %d/%d (%.1f%%) urls done", s.DoneURLs, s.TotalURLs, pct)
	if s.Recovered > 0 {
		fmt.Fprintf(&b, " (%d recovered)", s.Recovered)
	}
	if s.FastPathed > 0 {
		fmt.Fprintf(&b, " | %d fast-path", s.FastPathed)
	}
	fmt.Fprintf(&b, " | leases %d/%d done, %d active, %d pending | %d workers | elapsed %s",
		s.LeasesDone, s.Leases, s.LeasesActive, s.LeasesPending, len(s.Workers),
		(time.Duration(s.ElapsedMs) * time.Millisecond).Round(time.Millisecond))
	if s.EtaMs > 0 {
		fmt.Fprintf(&b, " | eta %s", (time.Duration(s.EtaMs) * time.Millisecond).Round(time.Millisecond))
	}
	if s.SitesPerDay > 0 {
		fmt.Fprintf(&b, " | %.0f sites/day", s.SitesPerDay)
	}
	for _, w := range s.Workers {
		fmt.Fprintf(&b, "\n  worker %-16s ", w.Name)
		if w.Lease != "" {
			fmt.Fprintf(&b, "lease %s attempt %d | %d done", w.Lease, w.Attempt, w.Done)
		} else {
			fmt.Fprintf(&b, "idle")
		}
		fmt.Fprintf(&b, " | seen %s ago", (time.Duration(w.LastSeenMs) * time.Millisecond).Round(time.Millisecond))
	}
	return b.String()
}
