// Package goroleak exercises the goroleak rule: goroutines must have a
// reachable stop path — a select, channel receive, Wait, or return in
// every infinite loop, or (for external callees) a context/stop-channel
// argument the caller can cancel through.
package goroleak

import (
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
)

// An unconditional spin loop outlives the crawl.
func spin(n *int) {
	go func() { // want "goroutine loops forever with no stop path"
		for {
			*n++
		}
	}()
}

// The same loop launched through a named module function is resolved via
// the call graph and flagged at the go statement.
func pump(n *int) {
	for {
		*n++
	}
}

func launchPump(n *int) {
	go pump(n) // want "goroutine loops forever with no stop path"
}

// Parked on a select with a done arm: clean.
func heartbeat(tick chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case <-tick:
			case <-done:
				return
			}
		}
	}()
}

// Ranging over a channel ends when the channel closes: clean.
func worker(jobs chan int, wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		for j := range jobs {
			_ = j
		}
	}()
}

// A data-dependent return inside the loop is a stop path: clean.
func drain(jobs chan int) {
	go func() {
		for {
			if len(jobs) == 0 {
				return
			}
			<-jobs
		}
	}()
}

// An external callee with no stop conduit in its arguments cannot be shut
// down from here.
func serve(srv *http.Server, ln net.Listener) {
	go srv.Serve(ln) // want "goroutine runs external \(\*http.Server\).Serve with no context or stop-channel argument"
}

// An external callee handed a channel has its conduit: clean.
func notify(ch chan os.Signal) {
	go signal.Notify(ch, os.Interrupt)
}
