package journal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRecordRoundTrip drives the record framing from both directions. The
// input bytes are used (a) as a payload — encoding then decoding must be
// the identity — and (b) as a raw frame candidate — decoding must never
// panic, never accept a frame whose CRC does not match, and whatever it
// does accept must re-encode to exactly the bytes it consumed.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint64(1), byte(KindSession))
	f.Add([]byte(`{"SeedURL":"http://x.example/"}`), uint64(42), byte(KindStats))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}, uint64(0), byte(0))
	// An oversized length prefix must be rejected, not allocated.
	huge := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(huge, uint32(MaxRecordBytes+1))
	f.Add(huge, uint64(7), byte(KindSession))

	f.Fuzz(func(t *testing.T, data []byte, seq uint64, kind byte) {
		// Direction 1: payload → frame → record.
		rec := Record{Seq: seq, Kind: Kind(kind), Payload: data}
		frame := encodeFrame(rec)
		got, n, err := decodeFrame(frame)
		if err != nil {
			t.Fatalf("decode(encode(rec)) failed: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
		}
		if got.Seq != seq || got.Kind != Kind(kind) || !bytes.Equal(got.Payload, data) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
		}
		// A frame followed by trailing garbage still decodes to the same
		// record (the reader streams frame-by-frame).
		withTail := append(append([]byte(nil), frame...), 0xAA, 0xBB)
		if got2, n2, err := decodeFrame(withTail); err != nil || n2 != len(frame) || !bytes.Equal(got2.Payload, data) {
			t.Fatalf("decode with trailing bytes: n=%d err=%v", n2, err)
		}
		// Any single-byte corruption of the frame must be detected — the
		// CRC covers the body, the length check covers the header.
		if len(frame) > 0 {
			i := int(seq % uint64(len(frame)))
			mut := append([]byte(nil), frame...)
			mut[i] ^= 0x01
			if mutGot, _, err := decodeFrame(mut); err == nil {
				if mutGot.Seq == got.Seq && mutGot.Kind == got.Kind && bytes.Equal(mutGot.Payload, got.Payload) {
					t.Fatalf("flipping byte %d went undetected", i)
				}
			}
		}

		// Direction 2: arbitrary bytes as a frame candidate.
		got3, n3, err := decodeFrame(data)
		if err == nil {
			if n3 <= 0 || n3 > len(data) {
				t.Fatalf("decode of raw bytes consumed impossible %d", n3)
			}
			if re := encodeFrame(got3); !bytes.Equal(re, data[:n3]) {
				t.Fatal("accepted frame does not re-encode canonically")
			}
		}
	})
}
