// Package vision implements the deep-learning object detector of the paper
// (a Faster R-CNN fine-tuned on 10,000 generated pages, Sections 4.3 and
// 5.3.2) as a classical detection pipeline over raster screenshots: salient
// region proposals from connected components, a hand-crafted appearance
// feature vector per region, and a nearest-centroid classifier whose
// per-class statistics are fitted ("fine-tuned") on annotated generated
// pages. It detects the same classes as Table 5: six text-CAPTCHA styles,
// two visual-CAPTCHA styles, buttons, and logos.
package vision

import (
	"math"

	"repro/internal/raster"
)

// FeatureDim is the length of the appearance feature vector.
const FeatureDim = 28

// Features computes the appearance feature vector of the region r in img.
func Features(img *raster.Image, r raster.Rect) []float64 {
	r = r.Clip(img.W, img.H)
	f := make([]float64, FeatureDim)
	if r.Empty() {
		return f
	}
	w, h := float64(r.W), float64(r.H)
	f[0] = math.Log(w)
	f[1] = math.Log(h)
	f[2] = w / h

	area := float64(r.Area())
	var hist [raster.NumColors]int
	ink := 0
	hTrans, vTrans := 0, 0
	for y := r.Y; y < r.Y+r.H; y++ {
		prev := raster.Color(255)
		for x := r.X; x < r.X+r.W; x++ {
			c := img.At(x, y)
			hist[c]++
			if img.Intensity(x, y) < 128 {
				ink++
			}
			if x > r.X && c != prev {
				hTrans++
			}
			prev = c
		}
	}
	for x := r.X; x < r.X+r.W; x++ {
		prev := raster.Color(255)
		for y := r.Y; y < r.Y+r.H; y++ {
			c := img.At(x, y)
			if y > r.Y && c != prev {
				vTrans++
			}
			prev = c
		}
	}
	for c := 0; c < int(raster.NumColors); c++ {
		f[3+c] = float64(hist[c]) / area
	}
	f[19] = float64(ink) / area
	f[20] = float64(hTrans) / area
	f[21] = float64(vTrans) / area
	f[22] = gridScoreH(img, r)
	f[23] = gridScoreV(img, r)
	f[24] = glyphBandRatio(img, r)
	f[25] = borderScore(img, r)
	f[26] = checkboxScore(img, r)
	f[27] = headerScore(img, r)
	return f
}

// gridScoreH returns the fraction of interior rows that are near-uniform
// non-background lines (grid/stripe structure).
func gridScoreH(img *raster.Image, r raster.Rect) float64 {
	if r.H < 4 {
		return 0
	}
	lines := 0
	for y := r.Y + 1; y < r.Y+r.H-1; y++ {
		nonBG := 0
		for x := r.X + 1; x < r.X+r.W-1; x++ {
			if img.At(x, y) != raster.White {
				nonBG++
			}
		}
		if float64(nonBG) >= 0.85*float64(r.W-2) {
			lines++
		}
	}
	return float64(lines) / float64(r.H-2)
}

func gridScoreV(img *raster.Image, r raster.Rect) float64 {
	if r.W < 4 {
		return 0
	}
	lines := 0
	for x := r.X + 1; x < r.X+r.W-1; x++ {
		nonBG := 0
		for y := r.Y + 1; y < r.Y+r.H-1; y++ {
			if img.At(x, y) != raster.White {
				nonBG++
			}
		}
		if float64(nonBG) >= 0.85*float64(r.H-2) {
			lines++
		}
	}
	return float64(lines) / float64(r.W-2)
}

// glyphBandRatio measures how much of the region's ink falls into a
// glyph-height band around the vertical center — high for single-line text
// such as button labels and text CAPTCHAs.
func glyphBandRatio(img *raster.Image, r raster.Rect) float64 {
	totalInk, bandInk := 0, 0
	bandY0 := r.CenterY() - raster.GlyphH
	bandY1 := r.CenterY() + raster.GlyphH
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			if img.Intensity(x, y) < 128 {
				totalInk++
				if y >= bandY0 && y <= bandY1 {
					bandInk++
				}
			}
		}
	}
	if totalInk == 0 {
		return 0
	}
	return float64(bandInk) / float64(totalInk)
}

// borderScore returns the fraction of perimeter pixels that differ from the
// page background, indicating an outlined widget.
func borderScore(img *raster.Image, r raster.Rect) float64 {
	per, hit := 0, 0
	for x := r.X; x < r.X+r.W; x++ {
		for _, y := range [2]int{r.Y, r.Y + r.H - 1} {
			per++
			if img.At(x, y) != raster.White {
				hit++
			}
		}
	}
	for y := r.Y; y < r.Y+r.H; y++ {
		for _, x := range [2]int{r.X, r.X + r.W - 1} {
			per++
			if img.At(x, y) != raster.White {
				hit++
			}
		}
	}
	if per == 0 {
		return 0
	}
	return float64(hit) / float64(per)
}

// checkboxScore looks for a small light square with a darker outline in the
// left quarter of the region — the signature of the "I'm not a robot"
// widget.
func checkboxScore(img *raster.Image, r raster.Rect) float64 {
	if r.W < 30 || r.H < 14 {
		return 0
	}
	best := 0.0
	for size := 8; size <= 16; size += 2 {
		for y := r.Y + 2; y+size < r.Y+r.H-2; y++ {
			for x := r.X + 2; x+size < r.X+r.W/3; x++ {
				sq := raster.R(x, y, size, size)
				// Outline must be non-white, interior light.
				edge := borderScore(img, sq)
				interiorLight := 0
				n := 0
				for iy := sq.Y + 2; iy < sq.Y+sq.H-2; iy++ {
					for ix := sq.X + 2; ix < sq.X+sq.W-2; ix++ {
						n++
						if img.Intensity(ix, iy) >= 200 {
							interiorLight++
						}
					}
				}
				if n == 0 {
					continue
				}
				s := edge * float64(interiorLight) / float64(n)
				if s > best {
					best = s
				}
			}
		}
	}
	return best
}

// headerScore measures whether the region's top strip is a solid saturated
// color while the rest is not — the banner structure of image-grid
// CAPTCHAs.
func headerScore(img *raster.Image, r raster.Rect) float64 {
	if r.H < 20 {
		return 0
	}
	stripH := r.H / 5
	if stripH < 4 {
		stripH = 4
	}
	var counts [raster.NumColors]int
	n := 0
	for y := r.Y + 1; y < r.Y+stripH; y++ {
		for x := r.X + 1; x < r.X+r.W-1; x++ {
			counts[img.At(x, y)]++
			n++
		}
	}
	if n == 0 {
		return 0
	}
	best, bestC := 0, raster.White
	for c, v := range counts {
		if v > best {
			best, bestC = v, raster.Color(c)
		}
	}
	if bestC == raster.White || bestC == raster.LightGray {
		return 0
	}
	return float64(best) / float64(n)
}
