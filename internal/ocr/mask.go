package ocr

import (
	"sync"

	"repro/internal/raster"
)

// Mask is a precomputed bitmap of "ink" pixels (anything notably darker
// than the page background) covering a rectangular region of an image. It
// is the binarization pass of the recognizer, split out so callers that run
// several recognitions over the same unchanged screenshot — the crawler
// reads labels near every input field — binarize once and share the mask,
// instead of re-thresholding (and copying) the pixels per call.
//
// Masks come from a pool; call Release when done to recycle the bitmap
// buffer. A mask must not be used after the underlying image mutates —
// the browser caches one per rendering and drops it on MarkDirty.
type Mask struct {
	// Region is the pixel rectangle the mask covers (clipped to the
	// image). Queries outside it read as not-ink.
	Region raster.Rect

	dark []bool // row-major, region-local, len Region.W*Region.H
}

// darkTable maps each palette color to the recognizer's ink rule
// (intensity < 128), hoisting the threshold out of the binarization loop.
var darkTable = buildDarkTable()

func buildDarkTable() [raster.NumColors]bool {
	var t [raster.NumColors]bool
	for c := raster.Color(0); c < raster.NumColors; c++ {
		t[c] = raster.ColorIntensity(c) < 128
	}
	return t
}

var maskPool = sync.Pool{New: func() any { return new(Mask) }}

// NewMask binarizes the whole image.
func NewMask(img *raster.Image) *Mask {
	return NewMaskRegion(img, raster.R(0, 0, img.W, img.H))
}

// NewMaskRegion binarizes only r (clipped to the image), in one
// O(r.Area()) pass.
func NewMaskRegion(img *raster.Image, r raster.Rect) *Mask {
	r = r.Clip(img.W, img.H)
	m := maskPool.Get().(*Mask)
	m.Region = r
	n := r.W * r.H
	if cap(m.dark) < n {
		m.dark = make([]bool, n)
	} else {
		m.dark = m.dark[:n]
	}
	for i := range m.dark {
		m.dark[i] = false
	}
	for y := 0; y < r.H; y++ {
		src := img.Pix[(r.Y+y)*img.W+r.X : (r.Y+y)*img.W+r.X+r.W]
		dst := m.dark[y*r.W : (y+1)*r.W]
		// Pages are mostly background; OR eight pixels at a time and only
		// threshold per-pixel when a chunk has content. Relies on White
		// being palette index 0 (not ink).
		x := 0
		for ; x+8 <= r.W; x += 8 {
			if src[x]|src[x+1]|src[x+2]|src[x+3]|src[x+4]|src[x+5]|src[x+6]|src[x+7] != 0 {
				for j := x; j < x+8; j++ {
					if px := src[j]; px < raster.NumColors && darkTable[px] {
						dst[j] = true
					}
				}
			}
		}
		for ; x < r.W; x++ {
			if px := src[x]; px < raster.NumColors && darkTable[px] {
				dst[x] = true
			}
		}
	}
	return m
}

// Release returns the mask's buffer to the pool. The Mask must not be used
// afterwards. Calling Release is optional — an unreleased mask is simply
// collected by the GC.
func (m *Mask) Release() { maskPool.Put(m) }

// At reports whether the absolute pixel (x, y) is ink. Pixels outside the
// covered region read as not-ink.
func (m *Mask) At(x, y int) bool {
	x -= m.Region.X
	y -= m.Region.Y
	if x < 0 || y < 0 || x >= m.Region.W || y >= m.Region.H {
		return false
	}
	return m.dark[y*m.Region.W+x]
}

// row returns the mask row covering [r.X, r.X+r.W) at absolute y. The
// caller guarantees r is clipped to the covered region.
func (m *Mask) row(r raster.Rect, y int) []bool {
	base := (y - m.Region.Y) * m.Region.W
	x0 := r.X - m.Region.X
	return m.dark[base+x0 : base+x0+r.W]
}
