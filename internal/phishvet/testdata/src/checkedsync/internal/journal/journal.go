// Package journal mimics the production durability path: the checkedsync
// rule flags silent error drops here and accepts the explicit `_ = ...`
// acknowledgment.
package journal

import "os"

func flagged(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(data)                // want "Write error discarded on the durability path"
	f.Sync()                     // want "Sync error discarded on the durability path"
	f.Close()                    // want "Close error discarded on the durability path"
	os.Rename(path, path+".bak") // want "Rename error discarded on the durability path"
	return nil
}

func ok(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // acknowledged: the Write failure is the one reported
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
