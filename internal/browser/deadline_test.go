package browser

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// stallTransport never answers: it blocks until the request's context is
// cancelled, mimicking a server that accepts the connection and then
// stalls forever.
type stallTransport struct{}

func (stallTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	<-req.Context().Done()
	return nil, req.Context().Err()
}

func TestFetchDeadlineCancelsStalledRequest(t *testing.T) {
	b := New(Options{Transport: stallTransport{}, Timeout: 30 * time.Millisecond})
	start := time.Now()
	_, err := b.Navigate("http://stall.test/")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled fetch returned no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want context.DeadlineExceeded in chain", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline took %s to fire", elapsed)
	}
}

func TestSessionContextCancelsFetch(t *testing.T) {
	// The per-fetch deadline is generous; the session context expires
	// first and must cut the fetch short.
	b := New(Options{Transport: stallTransport{}, Timeout: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	b.SetContext(ctx)
	start := time.Now()
	_, err := b.Navigate("http://stall.test/")
	if err == nil {
		t.Fatal("fetch survived an expired session context")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want context.DeadlineExceeded in chain", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("session cancellation did not propagate promptly")
	}
}

func TestSetContextNilFallsBack(t *testing.T) {
	b := New(Options{Transport: stallTransport{}, Timeout: 10 * time.Millisecond})
	b.SetContext(nil) // must not panic; deadline still applies
	if _, err := b.Navigate("http://stall.test/"); err == nil {
		t.Fatal("expected deadline error")
	}
}
