package sessionio

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/fieldspec"
	"repro/internal/phash"
	"repro/internal/script"
)

func sampleLogs() []*crawler.SessionLog {
	return []*crawler.SessionLog{
		{
			SiteID: "site-1", SeedURL: "http://a.test/", Brand: "Netflix",
			Category: "Online/Cloud Service", CampaignID: "camp-1",
			Outcome: crawler.OutcomeCompleted,
			Pages: []crawler.PageLog{
				{
					Index: 0, URL: "http://a.test/", Host: "a.test", Status: 200,
					Title: "Sign in", Text: "please sign in", DOMHash: "abc",
					PHash: phash.Hash{1, 2, 3, 4},
					Fields: []crawler.FieldLog{
						{Description: "email address", Label: fieldspec.Email, Confidence: 0.97, Value: "x@y.zz"},
					},
					SubmitMethod: crawler.SubmitEnter, DataAttempts: 1,
					Listeners:  []script.Listener{{Target: "input", Event: "keydown", Action: "store"}},
					ScriptSrcs: []string{"https://js.hcaptcha.com/1/api.js"},
				},
				{Index: 1, URL: "http://a.test/done", Host: "a.test", Status: 200, Text: "congratulations"},
			},
			NetLog: []browser.NetRequest{
				{Method: "GET", URL: "http://a.test/", Status: 200, Kind: "document"},
				{Method: "POST", URL: "http://a.test/k", Status: 204, Kind: "beacon", CarriedData: []string{"x@y.zz"}},
			},
		},
		{SiteID: "site-2", SeedURL: "http://b.test/", Outcome: crawler.OutcomeStuck},
	}
}

func TestRoundTrip(t *testing.T) {
	logs := sampleLogs()
	var buf bytes.Buffer
	if err := Write(&buf, logs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("lines = %d, want 2", got)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d sessions", len(back))
	}
	if !reflect.DeepEqual(logs[0], back[0]) {
		t.Errorf("round trip changed session:\n%+v\nvs\n%+v", logs[0], back[0])
	}
	if back[1].Outcome != crawler.OutcomeStuck {
		t.Errorf("session 2 = %+v", back[1])
	}
}

func TestNilSessionsSkipped(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []*crawler.SessionLog{nil, {SiteID: "x"}, nil}); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].SiteID != "x" {
		t.Errorf("back = %+v", back)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line should fail")
	}
	// Empty input is fine.
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %d", err, len(got))
	}
	// Blank lines are skipped.
	got, err = Read(strings.NewReader("\n\n{\"SiteID\":\"a\"}\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank lines: %v, %d", err, len(got))
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "logs.jsonl")
	logs := sampleLogs()
	if err := WriteFile(path, logs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(logs) {
		t.Fatalf("read %d sessions", len(back))
	}
	if back[0].Pages[0].Fields[0].Label != fieldspec.Email {
		t.Error("field label lost in file round trip")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file should error")
	}
}

func TestWriteFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "logs.jsonl")

	// Seed the destination with a previous export.
	if err := WriteFile(path, []*crawler.SessionLog{{SiteID: "old"}}); err != nil {
		t.Fatal(err)
	}
	// Overwrite: readers must only ever observe the old or the new complete
	// file, and the temp file must not linger.
	if err := WriteFile(path, sampleLogs()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].SiteID != "site-1" {
		t.Errorf("replaced content = %+v", back)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}

	// A failed write (unencodable destination dir) must not clobber the
	// existing file and must clean up its temp.
	if err := WriteFile(filepath.Join(dir, "no-such-subdir", "x.jsonl"), sampleLogs()); err == nil {
		t.Error("writing into a missing directory should fail")
	}
	back, err = ReadFile(path)
	if err != nil || len(back) != 2 {
		t.Errorf("original damaged by failed write: %v, %d sessions", err, len(back))
	}
}

func TestWriteRawAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.txt")

	if err := WriteRaw(path, []byte("old report")); err != nil {
		t.Fatal(err)
	}
	if err := WriteRaw(path, []byte("new report")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new report" {
		t.Errorf("content = %q, want %q", got, "new report")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}

	// A failed write must not clobber the existing file.
	if err := WriteRaw(filepath.Join(dir, "missing", "x.txt"), []byte("y")); err == nil {
		t.Error("writing into a missing directory should fail")
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "new report" {
		t.Errorf("original damaged by failed write: %v %q", err, got)
	}
}
