// Package globalrand exercises the globalrand rule: draws from the
// process-global source are flagged, seed-plumbed generators pass.
package globalrand

import "math/rand"

func flagged() int {
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
	return rand.Intn(10)               // want "rand.Intn draws from the process-global source"
}

func ok(seed int64) int {
	// Constructors are how seeds get plumbed; the generator they return is
	// a method receiver, not a package-level draw.
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
