package crawler

import (
	"encoding/json"
	"testing"
)

// TestCrawlPooledMatchesUnpooled is the tentpole determinism pin for
// session-graph recycling: for every site shape the suite exercises, a
// pooled crawl exports byte-for-byte the same SessionLog as an unpooled
// one — including after the pool has been warmed by prior sessions, which
// is when stale recycled state would show through.
func TestCrawlPooledMatchesUnpooled(t *testing.T) {
	s := loginPaymentSite()
	unpooled := newCrawler(t, s)
	pooled := newCrawler(t, s)
	pooled.Pool = NewSessionPool()

	want, err := json.Marshal(unpooled.Crawl("http://lp.test/"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := json.Marshal(pooled.Crawl("http://lp.test/"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("pooled crawl %d diverged from unpooled export:\npooled:   %s\nunpooled: %s", i, got, want)
		}
	}
}

// TestCrawlPooledMatchesUnpooledOnFailure pins the error paths: sessions
// that never get past the landing page must also export identically, since
// they take the early-return paths where the net log is copied out.
func TestCrawlPooledMatchesUnpooledOnFailure(t *testing.T) {
	unpooled := newCrawler(t)
	pooled := newCrawler(t)
	pooled.Pool = NewSessionPool()

	// The registry has no such host: the navigation fails.
	url := "http://nosuchsite.test/"
	want, err := json.Marshal(unpooled.Crawl(url))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := json.Marshal(pooled.Crawl(url))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("pooled failure crawl %d diverged:\npooled:   %s\nunpooled: %s", i, got, want)
		}
	}
}

// TestCrawlPooledAllocs gates the per-session hot path: once the pool is
// warm, a full multi-page session must stay under the allocation budget.
// The measured steady state is ~456 allocs per session (down from ~940
// before this optimization round; an unpooled session sits at ~505). The
// bound leaves headroom for an unluckily-timed GC emptying the pool
// mid-measurement, while staying below the unpooled count so a regression
// that silently disables recycling trips it.
func TestCrawlPooledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the budget only holds in a plain build")
	}
	c := newCrawler(t, loginPaymentSite())
	c.Pool = NewSessionPool()
	// Warm the pool and the site handler's session state.
	for i := 0; i < 3; i++ {
		c.Crawl("http://lp.test/")
	}
	allocs := testing.AllocsPerRun(5, func() {
		c.Crawl("http://lp.test/")
	})
	const budget = 495
	if allocs > budget {
		t.Errorf("pooled session allocations = %.0f, want <= %d", allocs, budget)
	}
}
