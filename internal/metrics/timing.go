package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented phase of a crawl session. The four
// stages cover the crawler's hot path: rendering a page, reading labels
// with OCR, running the object detector, and driving the submit ladder.
type Stage int

const (
	StageRender Stage = iota
	StageOCR
	StageDetect
	StageSubmit
	numStages
)

var stageNames = [numStages]string{"render", "ocr", "detect", "submit"}

// String returns the stage's name as printed in timing tables.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// StageByName maps a stage name (as emitted in trace spans and timing
// tables) back to its Stage. It reports false for unknown names, so trace
// consumers can skip span kinds they do not chart.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// StageTimings accumulates per-stage call counts, total time, and a
// fixed-bucket latency histogram (see hist.go). It is safe for concurrent
// use — the farm's workers all record into one shared collector — and the
// zero value is ready to use. A nil *StageTimings is a valid no-op
// collector, so instrumented code needs no guards.
type StageTimings struct {
	counts  [numStages]atomic.Int64
	nanos   [numStages]atomic.Int64
	buckets [numStages][NumHistBuckets]atomic.Int64
}

// Start returns the current time when the collector is active and the zero
// time otherwise; pair it with ObserveSince so disabled instrumentation
// skips the clock read entirely. The read goes through the package clock
// seam, so tests drive stage timings with SetClockForTest.
func (t *StageTimings) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return Now()
}

// ObserveSince records one completed stage call begun at start (as returned
// by Start). A nil collector or zero start is a no-op. Like Start, the
// clock read goes through the metrics seam, never time.Now directly.
func (t *StageTimings) ObserveSince(s Stage, start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.Observe(s, Now().Sub(start))
}

// Observe records one completed stage call of duration d.
func (t *StageTimings) Observe(s Stage, d time.Duration) {
	if t == nil || s < 0 || s >= numStages {
		return
	}
	t.counts[s].Add(1)
	t.nanos[s].Add(int64(d))
	t.buckets[s][histBucket(d)].Add(1)
}

// Merge adds o's accumulated counts, durations, and histogram buckets into
// t, so per-worker collectors can record contention-free and be combined
// once at the end of a run. Either side may be nil (no-op). Merging while
// o is still being written is safe but may miss in-flight observations.
func (t *StageTimings) Merge(o *StageTimings) {
	if t == nil || o == nil {
		return
	}
	for i := 0; i < int(numStages); i++ {
		if n := o.counts[i].Load(); n != 0 {
			t.counts[i].Add(n)
		}
		if n := o.nanos[i].Load(); n != 0 {
			t.nanos[i].Add(n)
		}
		for b := 0; b < NumHistBuckets; b++ {
			if n := o.buckets[i][b].Load(); n != 0 {
				t.buckets[i][b].Add(n)
			}
		}
	}
}

// StageStat is a point-in-time snapshot of one stage's counters.
type StageStat struct {
	Stage string
	Count int64
	Total time.Duration
	// Buckets is the latency histogram: Buckets[i] counts observations in
	// (HistBucketBound(i-1), HistBucketBound(i)]. It may be nil on records
	// written before the histogram existed; percentiles then read as 0.
	Buckets []int64 `json:",omitempty"`
}

// Mean returns the average duration per call.
func (s StageStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Quantile reads quantile q (0..1) from the stage's latency histogram,
// reported as the matching bucket's upper bound.
func (s StageStat) Quantile(q float64) time.Duration { return histQuantile(s.Buckets, q) }

// P50 is the median stage latency (bucket upper bound).
func (s StageStat) P50() time.Duration { return s.Quantile(0.50) }

// P90 is the 90th-percentile stage latency (bucket upper bound).
func (s StageStat) P90() time.Duration { return s.Quantile(0.90) }

// P99 is the 99th-percentile stage latency (bucket upper bound).
func (s StageStat) P99() time.Duration { return s.Quantile(0.99) }

// Snapshot returns the current statistics for every stage in stage order,
// including stages never observed (with zero counts). It may be called
// while other goroutines are still recording.
func (t *StageTimings) Snapshot() []StageStat {
	if t == nil {
		return nil
	}
	out := make([]StageStat, numStages)
	for i := range out {
		buckets := make([]int64, NumHistBuckets)
		for b := range buckets {
			buckets[b] = t.buckets[i][b].Load()
		}
		out[i] = StageStat{
			Stage:   stageNames[i],
			Count:   t.counts[i].Load(),
			Total:   time.Duration(t.nanos[i].Load()),
			Buckets: buckets,
		}
	}
	return out
}

// MergeStageStats combines two snapshots stage-by-stage, matching rows by
// stage name: counts, totals, and histogram buckets add; a's row order is
// preserved, and stages present only in b are appended in b's order. The
// bucket merge is lossless, so percentiles never depend on how many runs
// or workers the observations arrived through, nor on merge order. It
// supports merging farm.Stats across resumed runs, where each run
// contributes its own snapshot.
func MergeStageStats(a, b []StageStat) []StageStat {
	if len(a) == 0 {
		out := make([]StageStat, len(b))
		for i, s := range b {
			s.Buckets = mergeHistBuckets(nil, s.Buckets)
			out[i] = s
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	out := make([]StageStat, len(a))
	for i, s := range a {
		s.Buckets = mergeHistBuckets(nil, s.Buckets)
		out[i] = s
	}
	index := make(map[string]int, len(out))
	for i, s := range out {
		index[s.Stage] = i
	}
	for _, s := range b {
		if i, ok := index[s.Stage]; ok {
			out[i].Count += s.Count
			out[i].Total += s.Total
			out[i].Buckets = mergeHistBuckets(out[i].Buckets, s.Buckets)
		} else {
			index[s.Stage] = len(out)
			s.Buckets = mergeHistBuckets(nil, s.Buckets)
			out = append(out, s)
		}
	}
	return out
}

// StageTable formats a snapshot as an aligned per-stage breakdown with
// latency percentiles from the streaming histogram.
func StageTable(stats []StageStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %10s %10s %10s\n",
		"Stage", "Calls", "Total", "Mean", "P50", "P90", "P99")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-8s %8d %12s %12s %10s %10s %10s\n",
			s.Stage, s.Count, s.Total.Round(time.Microsecond), s.Mean().Round(time.Microsecond),
			s.P50(), s.P90(), s.P99())
	}
	return b.String()
}
