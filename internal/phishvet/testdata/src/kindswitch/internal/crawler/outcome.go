// Package crawler mimics the production session-outcome const set:
// untyped string constants still form a closed set when they share the
// Outcome prefix.
package crawler

const (
	OutcomeCompleted = "completed"
	OutcomeStuck     = "stuck"
	OutcomeTakedown  = "takedown"
)
