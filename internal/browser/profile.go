package browser

import (
	"fmt"
	"net/http"
	"time"
)

// Profile is the identity a browser presents on every request: the headers
// cloaking kits key on (user agent, referrer, Accept-Language, a geo-ish
// X-Forwarded-For), whether the browser answers JS-capability probes, and
// whether its cookie jar persists across visits. The crawler's adaptive
// uncloaking loop mutates a Profile between attempts; the sitegen cloak
// rules draw their required values from the same candidate pools, so a
// mutated profile can always converge on a kit's gate.
type Profile struct {
	UserAgent      string
	Referrer       string
	AcceptLanguage string
	XForwardedFor  string
	// JSCapable browsers answer a decoy's X-JS-Challenge by setting the
	// challenge cookie and re-requesting, the transport-level equivalent of
	// executing the kit's probe script.
	JSCapable bool
	// PersistCookies marks the jar as carried over from a prior visit; the
	// crawler imports the previous attempt's jar when set, which is how
	// repeat-visit cookie gates are satisfied.
	PersistCookies bool
}

// Candidate pools the cloak rules and the mutation schedule share. Index 0
// is always the honest crawler's default; cloak rules require an index >= 1
// so a single honest visit never passes by accident. Order is part of the
// deterministic mutation schedule — append only, never reorder.

// UserAgents returns the user-agent candidate pool.
func UserAgents() []string {
	return []string{
		"Mozilla/5.0 (X11; Linux x86_64) PhishCrawl/1.0",
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/105.0.0.0 Safari/537.36",
		"Mozilla/5.0 (iPhone; CPU iPhone OS 15_6 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/15.6 Mobile/15E148 Safari/604.1",
		"Mozilla/5.0 (Linux; Android 12; SM-G991B) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/104.0.0.0 Mobile Safari/537.36",
	}
}

// Referrers returns the referrer candidate pool. Index 0 — the default —
// is empty: an honest crawl arrives with no referrer.
func Referrers() []string {
	return []string{
		"",
		"https://mail.google.com/mail/u/0/",
		"https://www.facebook.com/",
		"https://outlook.live.com/mail/",
	}
}

// Languages returns the Accept-Language candidate pool.
func Languages() []string {
	return []string{"en-US", "fr-FR", "es-ES", "de-DE"}
}

// ForwardedAddrs returns the X-Forwarded-For candidate pool. Index 0 — the
// default — is empty: an honest crawl sends no forwarding header.
func ForwardedAddrs() []string {
	return []string{"", "203.0.113.7", "198.51.100.23", "192.0.2.55"}
}

// DefaultProfile is the honest crawler identity: pool index 0 on every
// dimension, no JS answers, a fresh jar each visit.
func DefaultProfile() Profile {
	return Profile{
		UserAgent:      UserAgents()[0],
		Referrer:       Referrers()[0],
		AcceptLanguage: Languages()[0],
		XForwardedFor:  ForwardedAddrs()[0],
	}
}

// Fingerprint renders the profile as the compact pool-index form journaled
// with each adaptive attempt: "ua=0 ref=0 lang=0 geo=0 js=0 ck=0". Values
// outside the pools render as index -1.
func (p Profile) Fingerprint() string {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("ua=%d ref=%d lang=%d geo=%d js=%d ck=%d",
		poolIndex(UserAgents(), p.UserAgent),
		poolIndex(Referrers(), p.Referrer),
		poolIndex(Languages(), p.AcceptLanguage),
		poolIndex(ForwardedAddrs(), p.XForwardedFor),
		b(p.JSCapable), b(p.PersistCookies))
}

func poolIndex(pool []string, v string) int {
	for i, c := range pool {
		if c == v {
			return i
		}
	}
	return -1
}

// SetProfile installs the identity the browser presents from the next
// request on. Reset restores the default profile.
func (b *Browser) SetProfile(p Profile) { b.profile = p }

// CookieSnapshot returns a copy of the jar for carrying into a later visit
// (nil when the jar is empty).
func (b *Browser) CookieSnapshot() map[string]string {
	if len(b.cookies) == 0 {
		return nil
	}
	out := make(map[string]string, len(b.cookies))
	for k, v := range b.cookies {
		out[k] = v
	}
	return out
}

// ImportCookies seeds the jar from a prior visit's snapshot, modelling a
// repeat visitor whose cookies persisted.
func (b *Browser) ImportCookies(jar map[string]string) {
	for k, v := range jar {
		b.cookies[k] = v
	}
}

// applyProfile stamps the profile headers on an outgoing request. The
// default profile's empty referrer/XFF dimensions emit no header at all —
// an honest request looks exactly like one from before profiles existed.
func (b *Browser) applyProfile(h map[string][]string) {
	if b.profile.UserAgent != "" {
		h["User-Agent"] = []string{b.profile.UserAgent}
	}
	if b.profile.Referrer != "" {
		h["Referer"] = []string{b.profile.Referrer}
	}
	if b.profile.AcceptLanguage != "" {
		h["Accept-Language"] = []string{b.profile.AcceptLanguage}
	}
	if b.profile.XForwardedFor != "" {
		h["X-Forwarded-For"] = []string{b.profile.XForwardedFor}
	}
}

// answerChallenge records the decoy's JS probe answer in the jar, as the
// kit's probe script would. The next request presents the cookie and
// passes the js gate.
func (b *Browser) answerChallenge(token string) {
	b.cookies[JSChallengeCookie] = token
}

// JSChallengeCookie is the cookie name a JS-capability probe answer is
// stored under; JSChallengeHeader is the decoy response header carrying the
// probe token. Shared with internal/phishserver's cloak gate.
const (
	JSChallengeCookie = "jsc"
	JSChallengeHeader = "X-Js-Challenge"
)

// epochExpired reports whether a Set-Cookie header asks for deletion.
// Go's parser maps Max-Age=0 to MaxAge==-1; explicit Expires values at or
// before the Unix epoch (the classic deletion idiom) also count. The
// comparison point is the epoch — the session-logical clock's origin —
// never the wall clock, so jar state stays byte-deterministic.
func epochExpired(c *http.Cookie) bool {
	if c.MaxAge < 0 {
		return true
	}
	return !c.Expires.IsZero() && !c.Expires.After(epoch)
}

var epoch = time.Unix(0, 0)
