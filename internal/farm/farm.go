// Package farm runs crawl sessions at scale, modelling the Docker-based
// crawler farm of Section 4.6: a pool of parallel workers, each giving
// every site a fresh browser profile (the paper's clean container per
// session), with aggregate throughput accounting (the paper sustains more
// than 1,000 sites per day on 30 parallel sessions).
package farm

import (
	"sync"
	"time"

	"repro/internal/crawler"
	"repro/internal/metrics"
)

// DefaultWorkers matches the paper's 30 parallel Docker sessions.
const DefaultWorkers = 30

// OutcomeLost is the Stats.Outcomes key counting sessions that produced no
// log at all — a worker never wrote one — so outcome counts always sum to
// Sites and silent losses are visible in the report.
const OutcomeLost = "lost"

// Config configures a crawl farm.
type Config struct {
	// Workers is the parallel session count (default 30).
	Workers int
	// Crawler is the shared crawler template; its NewBrowser hook supplies
	// the per-session fresh profile.
	Crawler *crawler.Crawler
}

// Stats summarizes a finished run.
type Stats struct {
	Sites    int
	Elapsed  time.Duration
	Outcomes map[string]int
	// Stages is the per-stage timing breakdown (render, OCR, detect,
	// submit) aggregated across every worker, in stage order.
	Stages []metrics.StageStat
}

// SitesPerDay extrapolates throughput.
func (s Stats) SitesPerDay() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Sites) / s.Elapsed.Seconds() * 86400
}

// Run crawls every URL with the configured parallelism and returns the
// session logs in input order plus run statistics.
func Run(cfg Config, urls []string) ([]*crawler.SessionLog, Stats) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > len(urls) && len(urls) > 0 {
		workers = len(urls)
	}
	logs := make([]*crawler.SessionLog, len(urls))
	// All workers record into one shared stage-timing collector (it is
	// atomic inside); reuse the template's when the caller installed one so
	// timings accumulate across Run calls.
	timings := cfg.Crawler.Timings
	if timings == nil {
		timings = &metrics.StageTimings{}
	}
	start := time.Now()
	var wg sync.WaitGroup
	// Buffered to the full job count so the producer never blocks: all
	// indices are enqueued up front and workers drain at their own pace.
	jobs := make(chan int, len(urls))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Each worker gets its own crawler so faker sequences differ
			// across sessions without shared state.
			c := *cfg.Crawler
			c.Timings = timings
			for idx := range jobs {
				c.FakerSeed = cfg.Crawler.FakerSeed + int64(idx)*7919
				logs[idx] = c.Crawl(urls[idx])
			}
		}(w)
	}
	for i := range urls {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	stats := Stats{
		Sites:    len(urls),
		Elapsed:  time.Since(start),
		Outcomes: map[string]int{},
		Stages:   timings.Snapshot(),
	}
	for _, l := range logs {
		if l != nil {
			stats.Outcomes[l.Outcome]++
		} else {
			stats.Outcomes[OutcomeLost]++
		}
	}
	return logs, stats
}
