package triage_test

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/browser"
	"repro/internal/crawler"
	"repro/internal/feed"
	"repro/internal/phishserver"
	"repro/internal/site"
	"repro/internal/sitegen"
	"repro/internal/triage"
)

// testUniverse generates a clone-heavy corpus, serves it, and returns the
// feed URLs, the URL -> site ground truth, and a browser factory over the
// serving transport — the same wiring core.NewPipeline does, minus model
// training.
func testUniverse(t testing.TB, numSites, minCampaign int) ([]string, map[string]*site.Site, func() *browser.Browser) {
	t.Helper()
	params := sitegen.ScaledParams(numSites, 42)
	params.MinCampaignSize = minCampaign
	c := sitegen.Generate(params)
	reg := phishserver.NewRegistry()
	for _, s := range c.Sites {
		reg.AddSite(s)
	}
	var transport http.RoundTripper = phishserver.Transport{Registry: reg}
	nb := func() *browser.Browser {
		return browser.New(browser.Options{Transport: transport})
	}
	f := feed.FromCorpus(c, 43)
	bySeed := map[string]*site.Site{}
	for _, e := range f.Filter() {
		bySeed[e.URL] = e.Site
	}
	return f.URLs(), bySeed, nb
}

func buildPlan(t testing.TB, urls []string, nb func() *browser.Browser, opts triage.Options, workers int) *triage.Plan {
	t.Helper()
	return triage.BuildPlan(urls, triage.Config{
		Options:    opts,
		Workers:    workers,
		NewBrowser: nb,
	})
}

// TestBuildPlanDeterministicAcrossWorkers is the plan-level byte-determinism
// pin: the plan is a pure function of (feed, config), so 1 probe worker and
// 8 probe workers must encode identically.
func TestBuildPlanDeterministicAcrossWorkers(t *testing.T) {
	urls, _, nb := testUniverse(t, 60, 6)
	p1 := buildPlan(t, urls, nb, triage.Options{}, 1)
	p8 := buildPlan(t, urls, nb, triage.Options{}, 8)
	b1, err := p1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b8, err := p8.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("plan diverged across probe worker counts:\n1 worker:  %s\n8 workers: %s", b1, b8)
	}
	if err := p1.Verify(b8); err != nil {
		t.Fatalf("Verify rejected an identical plan: %v", err)
	}
}

// TestBuildPlanClusterPurity measures the campaign index against the
// sitegen ground truth on a clone-heavy feed: sites deployed from the same
// kit template must land in one triage cluster (purity), and the funnel
// must fast-path the clones (session reduction).
func TestBuildPlanClusterPurity(t *testing.T) {
	const numSites, minCampaign = 120, 10
	urls, bySeed, nb := testUniverse(t, numSites, minCampaign)
	p := buildPlan(t, urls, nb, triage.Options{}, 8)

	f := p.Funnel()
	if f.Total != len(urls) {
		t.Fatalf("funnel total %d != feed %d", f.Total, len(urls))
	}
	if f.Cut != 0 {
		t.Fatalf("funnel cut %d without -triage-topk", f.Cut)
	}
	// ~12 kit campaigns of ~10 deployments each: one full session founds
	// each campaign, the clones fast-path. Require the >= 5x reduction the
	// funnel is built for.
	if f.Full*5 > f.Total {
		t.Fatalf("full sessions %d of %d: want >= 5x reduction (funnel %+v)", f.Full, f.Total, f)
	}

	// Purity: of the sites sharing one triage cluster, what fraction share
	// the dominant ground-truth kit campaign. Completeness: of the sites
	// sharing one kit campaign, what fraction landed in its dominant triage
	// cluster.
	byCluster := map[string]map[string]int{}
	byKit := map[string]map[string]int{}
	members := 0
	for _, e := range p.Entries {
		if e.Campaign == "" {
			continue
		}
		s := bySeed[e.URL]
		if s == nil {
			t.Fatalf("feed URL %s has no backing site", e.URL)
		}
		if byCluster[e.Campaign] == nil {
			byCluster[e.Campaign] = map[string]int{}
		}
		byCluster[e.Campaign][s.CampaignID]++
		if byKit[s.CampaignID] == nil {
			byKit[s.CampaignID] = map[string]int{}
		}
		byKit[s.CampaignID][e.Campaign]++
		members++
	}
	dominant := func(counts map[string]int) int {
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		return best
	}
	pureSum, kitSum := 0, 0
	for _, counts := range byCluster {
		pureSum += dominant(counts)
	}
	for _, counts := range byKit {
		kitSum += dominant(counts)
	}
	purity := float64(pureSum) / float64(members)
	completeness := float64(kitSum) / float64(members)
	t.Logf("clusters=%d kits=%d members=%d purity=%.3f completeness=%.3f funnel=%+v",
		len(byCluster), len(byKit), members, purity, completeness, f)
	if purity < 0.95 {
		t.Errorf("cluster purity %.3f, want >= 0.95", purity)
	}
	if completeness < 0.90 {
		t.Errorf("cluster completeness %.3f, want >= 0.90", completeness)
	}
}

// TestBuildPlanTopKCut pins the lexical stage: -triage-topk keeps exactly K
// entries, cuts the rest, and cut entries fast-path to triaged-out logs
// without ever being probed.
func TestBuildPlanTopKCut(t *testing.T) {
	urls, _, nb := testUniverse(t, 40, 5)
	const topK = 10
	p := buildPlan(t, urls, nb, triage.Options{TopK: topK}, 4)
	f := p.Funnel()
	if f.Cut != len(urls)-topK {
		t.Fatalf("cut %d entries, want %d (topK %d of %d)", f.Cut, len(urls)-topK, topK, len(urls))
	}
	for i, e := range p.Entries {
		if e.Decision != triage.DecisionCut {
			continue
		}
		lg := p.FastPath(i, urls[i])
		if lg == nil || lg.Outcome != crawler.OutcomeTriagedOut {
			t.Fatalf("cut entry %d: FastPath = %+v, want a %s log", i, lg, crawler.OutcomeTriagedOut)
		}
		if lg.TriageScore != e.Score {
			t.Fatalf("cut entry %d: log score %g != plan score %g", i, lg.TriageScore, e.Score)
		}
	}
}

// TestFastPathAndStamp covers the farm-facing surface: attributed entries
// synthesize a one-page session carrying the probe fingerprint, full
// entries return nil and are stamped after their real session finishes.
func TestFastPathAndStamp(t *testing.T) {
	urls, _, nb := testUniverse(t, 60, 6)
	p := buildPlan(t, urls, nb, triage.Options{}, 4)

	attributed, full := -1, -1
	for i, e := range p.Entries {
		switch e.Decision {
		case triage.DecisionAttributed:
			if attributed < 0 {
				attributed = i
			}
		case triage.DecisionFull:
			if full < 0 {
				full = i
			}
		}
	}
	if attributed < 0 || full < 0 {
		t.Fatalf("clone-heavy plan has attributed=%d full=%d entries", attributed, full)
	}

	lg := p.FastPath(attributed, urls[attributed])
	if lg == nil || lg.Outcome != crawler.OutcomeAttributed {
		t.Fatalf("FastPath(attributed) = %+v, want an %s log", lg, crawler.OutcomeAttributed)
	}
	if lg.TriageCampaign == "" || lg.TriageSimilarity == 0 {
		t.Fatalf("attributed log missing campaign/similarity: %+v", lg)
	}
	if len(lg.Pages) != 1 || lg.Pages[0].DOMHash == "" {
		t.Fatalf("attributed log should carry the probe's page, got %+v", lg.Pages)
	}
	// Fresh log per call: the farm mutates completion fields in place.
	if again := p.FastPath(attributed, urls[attributed]); again == lg {
		t.Fatal("FastPath returned the same log twice")
	}

	if got := p.FastPath(full, urls[full]); got != nil {
		t.Fatalf("FastPath(full) = %+v, want nil", got)
	}
	if got := p.FastPath(full, "http://wrong.test/"); got != nil {
		t.Fatalf("FastPath with mismatched URL = %+v, want nil", got)
	}

	session := &crawler.SessionLog{SeedURL: urls[full], FeedIndex: full, Outcome: crawler.OutcomeCompleted}
	p.Stamp(session)
	if session.TriageScore != p.Entries[full].Score {
		t.Fatalf("Stamp score %g != plan %g", session.TriageScore, p.Entries[full].Score)
	}
	if session.TriageCampaign != p.Entries[full].Campaign {
		t.Fatalf("Stamp campaign %q != plan %q", session.TriageCampaign, p.Entries[full].Campaign)
	}
}

// TestVerifyRejectsDifferentPlan pins the journal guard: a stored record
// from different triage flags must be refused.
func TestVerifyRejectsDifferentPlan(t *testing.T) {
	urls, _, nb := testUniverse(t, 40, 5)
	p := buildPlan(t, urls, nb, triage.Options{}, 4)
	other := buildPlan(t, urls, nb, triage.Options{TopK: 5}, 4)
	stored, err := other.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(stored); err == nil {
		t.Fatal("Verify accepted a plan built under different flags")
	}
	own, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(own); err != nil {
		t.Fatalf("Verify rejected the plan's own encoding: %v", err)
	}
}
