package site

import "testing"

func sample() *Site {
	return &Site{
		ID: "s1", Host: "h.test",
		Pages: []*Page{
			{Path: "/"},
			{Path: "/s2"},
			{Path: "/s3"},
		},
	}
}

func TestSeedURL(t *testing.T) {
	if got := sample().SeedURL(); got != "http://h.test/" {
		t.Errorf("SeedURL = %q", got)
	}
}

func TestPageAt(t *testing.T) {
	s := sample()
	if p := s.PageAt("/s2"); p == nil || p.Path != "/s2" {
		t.Errorf("PageAt(/s2) = %v", p)
	}
	if p := s.PageAt("/nope"); p != nil {
		t.Errorf("PageAt(/nope) = %v", p)
	}
}

func TestPageIndex(t *testing.T) {
	s := sample()
	if i := s.PageIndex("/"); i != 0 {
		t.Errorf("index / = %d", i)
	}
	if i := s.PageIndex("/s3"); i != 2 {
		t.Errorf("index /s3 = %d", i)
	}
	if i := s.PageIndex("/x"); i != -1 {
		t.Errorf("index /x = %d", i)
	}
}
