// Command phishgen generates the synthetic phishing corpus and prints its
// composition: campaign count, pattern rates versus the paper's published
// numbers, and optionally a sample page's HTML.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fieldspec"
	"repro/internal/site"
	"repro/internal/sitegen"
)

func main() {
	numSites := flag.Int("sites", 2000, "number of phishing sites to generate")
	seed := flag.Int64("seed", 42, "generation seed")
	dump := flag.String("dump", "", "dump the landing-page HTML of the given site ID and exit")
	flag.Parse()

	corpus := sitegen.Generate(sitegen.ScaledParams(*numSites, *seed))

	if *dump != "" {
		for _, s := range corpus.Sites {
			if s.ID == *dump {
				fmt.Println(s.Pages[0].HTML)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "site %q not found\n", *dump)
		os.Exit(1)
	}

	fmt.Printf("Generated %d sites in %d campaigns (seed %d)\n\n",
		len(corpus.Sites), corpus.Campaigns, *seed)

	var multi, ctFirst, captchaN, keylog, ocr, formless, dbl, otp, clone int
	pageHist := map[int]int{}
	termHist := map[string]int{}
	for _, s := range corpus.Sites {
		tr := s.Truth
		if tr.MultiPage {
			multi++
			pageHist[tr.NumPages]++
			termHist[tr.Termination]++
		}
		if tr.ClickThroughFirst {
			ctFirst++
		}
		if tr.HasCaptcha {
			captchaN++
		}
		if tr.KeyloggerTier >= 1 {
			keylog++
		}
		if tr.OCRObfuscated {
			ocr++
		}
		if tr.NoStandardSubmit {
			formless++
		}
		if tr.DoubleLogin {
			dbl++
		}
		if tr.TwoFactor {
			otp++
		}
		if tr.Clones {
			clone++
		}
	}
	n := float64(len(corpus.Sites))
	row := func(name string, got int, paperPct float64) {
		fmt.Printf("%-28s %6d (%5.1f%%)  paper: %5.1f%%\n", name, got, 100*float64(got)/n, paperPct)
	}
	row("multi-page", multi, 45.2)
	row("click-through first", ctFirst, 5.2)
	row("captcha", captchaN, 5.0)
	row("keylogger (any tier)", keylog, 36.1)
	row("OCR-obfuscated", ocr, 27.0)
	row("no standard submit", formless, 12.0)
	row("double login", dbl, 0.8)
	row("OTP/SMS 2FA", otp, 2.0)
	row("clones brand design", clone, 58.0)
	fmt.Println("\nPage-count histogram (multi-page sites):")
	for k := 2; k <= 5; k++ {
		fmt.Printf("  %d pages: %d\n", k, pageHist[k])
	}
	fmt.Println("\nTermination patterns (multi-page sites):")
	for _, k := range []string{site.TermRedirectLegit, site.TermSuccess, site.TermCustomError, site.TermHTTPError, site.TermAwareness, site.TermNone} {
		fmt.Printf("  %-16s %d\n", k, termHist[k])
	}

	fieldHist := map[fieldspec.Type]int{}
	for _, s := range corpus.Sites {
		for _, pf := range s.Truth.FieldsPerPage {
			for _, f := range pf {
				fieldHist[f]++
			}
		}
	}
	fmt.Println("\nField-type totals (ground truth):")
	for _, t := range fieldspec.All() {
		if fieldHist[t] > 0 {
			fmt.Printf("  %-10s %d\n", t, fieldHist[t])
		}
	}
}
