package main

import (
	"fmt"
	"time"
)

// cliFlags collects the parsed command-line values whose combinations can
// be incoherent. validateFlags rejects bad configurations immediately
// after flag parsing — before corpus generation and model training — so an
// operator typo fails in milliseconds, not minutes into a run.
type cliFlags struct {
	sites         int
	sample        int
	workers       int
	retries       int
	sessionBudget time.Duration
	fetchTimeout  time.Duration
	progress      time.Duration
	journalDir    string
	journalSync   string
	resume        bool
	compact       bool
	statusAddr    string
}

// validateFlags returns the first configuration error, or nil. Kept free
// of flag.* and os.* so tests can table-drive it directly.
func validateFlags(f cliFlags) error {
	if f.sites <= 0 {
		return fmt.Errorf("-sites must be positive (got %d)", f.sites)
	}
	if f.sample < 0 {
		return fmt.Errorf("-sample must be >= 0 (got %d; 0 crawls the full feed)", f.sample)
	}
	if f.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d; 0 uses the default)", f.workers)
	}
	if f.retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d; 0 uses the farm default)", f.retries)
	}
	if f.sessionBudget < 0 {
		return fmt.Errorf("-session-budget must be >= 0 (got %v; 0 uses the crawler default)", f.sessionBudget)
	}
	if f.fetchTimeout < 0 {
		return fmt.Errorf("-fetch-timeout must be >= 0 (got %v; 0 uses the browser default)", f.fetchTimeout)
	}
	if f.progress < 0 {
		return fmt.Errorf("-progress must be >= 0 (got %v; 0 disables the periodic progress line)", f.progress)
	}
	switch f.journalSync {
	case "always", "group", "batch", "none":
	default:
		return fmt.Errorf("unknown -journal-sync %q (want always, group, batch, or none)", f.journalSync)
	}
	if f.resume && f.journalDir == "" {
		return fmt.Errorf("-resume requires -journal <dir>")
	}
	if f.compact && f.journalDir == "" {
		return fmt.Errorf("-compact requires -journal <dir>")
	}
	if f.statusAddr != "" && f.compact {
		return fmt.Errorf("-status-addr cannot be combined with -compact: compaction rewrites the journal after the crawl ends, when the status server no longer reports live progress; run the compaction pass separately")
	}
	return nil
}
