package layout

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/raster"
)

func TestBlocksStackVertically(t *testing.T) {
	doc := dom.Parse(`<body><div id="a">first</div><div id="b">second</div></body>`)
	res := Compute(doc, 400)
	a, okA := res.Box(doc.ElementByID("a"))
	b, okB := res.Box(doc.ElementByID("b"))
	if !okA || !okB {
		t.Fatal("blocks not laid out")
	}
	if b.Y < a.Y+a.H {
		t.Errorf("b (%v) overlaps a (%v)", b, a)
	}
	if res.Height <= 0 {
		t.Error("content height not computed")
	}
}

func TestInlineFlowAndWrap(t *testing.T) {
	doc := dom.Parse(`<body><div><input id="i1"><input id="i2"><input id="i3"></div></body>`)
	res := Compute(doc, 400)
	b1, _ := res.Box(doc.ElementByID("i1"))
	b2, _ := res.Box(doc.ElementByID("i2"))
	b3, _ := res.Box(doc.ElementByID("i3"))
	if b2.X <= b1.X {
		t.Errorf("i2 should be right of i1: %v %v", b1, b2)
	}
	// Three 160px inputs cannot fit in 400px: the third must wrap.
	if b3.Y <= b1.Y {
		t.Errorf("i3 should wrap to a new row: %v vs %v", b3, b1)
	}
}

func TestDisplayNoneExcluded(t *testing.T) {
	doc := dom.Parse(`<body><div id="x" style="display:none"><input id="i"></div><div id="y">shown</div></body>`)
	res := Compute(doc, 400)
	if res.Visible(doc.ElementByID("x")) {
		t.Error("display:none element reported visible")
	}
	if res.Visible(doc.ElementByID("i")) {
		t.Error("child of display:none reported visible")
	}
	if !res.Visible(doc.ElementByID("y")) {
		t.Error("normal element reported invisible")
	}
}

func TestVisibilityHiddenOccupiesSpace(t *testing.T) {
	doc := dom.Parse(`<body><div id="h" style="visibility:hidden">ghost</div><div id="v">real</div></body>`)
	res := Compute(doc, 400)
	h, _ := res.Box(doc.ElementByID("h"))
	v, _ := res.Box(doc.ElementByID("v"))
	if res.Visible(doc.ElementByID("h")) {
		t.Error("hidden element reported visible")
	}
	if v.Y <= h.Y {
		t.Error("hidden element should still occupy vertical space")
	}
}

func TestHiddenInputType(t *testing.T) {
	doc := dom.Parse(`<body><input type="hidden" id="h" name="csrf"></body>`)
	res := Compute(doc, 400)
	if res.Visible(doc.ElementByID("h")) {
		t.Error("input type=hidden reported visible")
	}
}

func TestExplicitSizes(t *testing.T) {
	doc := dom.Parse(`<body><input id="i" style="width: 250px; height: 30px"></body>`)
	res := Compute(doc, 400)
	b, _ := res.Box(doc.ElementByID("i"))
	if b.W != 250 || b.H != 30 {
		t.Errorf("box = %v, want 250x30", b)
	}
}

func TestWidthHeightAttributes(t *testing.T) {
	doc := dom.Parse(`<body><img id="m" width="100" height="60" src="x"></body>`)
	res := Compute(doc, 400)
	b, _ := res.Box(doc.ElementByID("m"))
	if b.W != 100 || b.H != 60 {
		t.Errorf("img box = %v, want 100x60", b)
	}
}

func TestParseStyleColors(t *testing.T) {
	n := dom.NewElement("div", "style", "color: red; background-color: navy")
	s := ParseStyle(n)
	if s.Color != raster.Red {
		t.Errorf("color = %v", s.Color)
	}
	if !s.HasBackground || s.Background != raster.Navy {
		t.Errorf("background = %v %v", s.HasBackground, s.Background)
	}
}

func TestParseStyleBackgroundImage(t *testing.T) {
	cases := map[string]string{
		`background-image: url(/bg.pxi)`:        "/bg.pxi",
		`background-image: url('/bg.pxi')`:      "/bg.pxi",
		`background-image: url("/a/b.pxi")`:     "/a/b.pxi",
		`background-image: none`:                "",
		`color:red;background-image:url(x.pxi)`: "x.pxi",
	}
	for style, want := range cases {
		n := dom.NewElement("div", "style", style)
		if got := ParseStyle(n).BackgroundImage; got != want {
			t.Errorf("style %q -> %q, want %q", style, got, want)
		}
	}
}

func TestButtonSizedByLabel(t *testing.T) {
	doc := dom.Parse(`<body><button id="short">Go</button><button id="long">Continue to the next step</button></body>`)
	res := Compute(doc, 600)
	s, _ := res.Box(doc.ElementByID("short"))
	l, _ := res.Box(doc.ElementByID("long"))
	if l.W <= s.W {
		t.Errorf("long button (%v) should be wider than short (%v)", l, s)
	}
}

func TestAnchorColoredBlue(t *testing.T) {
	n := dom.NewElement("a", "href", "#")
	if s := ParseStyle(n); s.Color != raster.Blue {
		t.Errorf("anchor color = %v, want blue", s.Color)
	}
}

func TestNestedFormLayout(t *testing.T) {
	doc := dom.Parse(`<body><form id="f">
		<div><label>Email</label><input id="e" name="email"></div>
		<div><label>Password</label><input id="p" name="password" type="password"></div>
		<button id="b">Sign in</button>
	</form></body>`)
	res := Compute(doc, 500)
	e, _ := res.Box(doc.ElementByID("e"))
	p, _ := res.Box(doc.ElementByID("p"))
	b, _ := res.Box(doc.ElementByID("b"))
	f, _ := res.Box(doc.ElementByID("f"))
	if p.Y <= e.Y {
		t.Error("password row should be below email row")
	}
	if b.Y <= p.Y {
		t.Error("button should be below inputs")
	}
	for _, in := range []raster.Rect{e, p, b} {
		if in.X < f.X || in.Y < f.Y || in.X+in.W > f.X+f.W+1 {
			t.Errorf("child %v escapes form box %v", in, f)
		}
	}
}

func TestLabelLeftOfInput(t *testing.T) {
	doc := dom.Parse(`<body><div><span id="l">Phone</span><input id="i"></div></body>`)
	res := Compute(doc, 600)
	l, _ := res.Box(doc.ElementByID("l"))
	i, _ := res.Box(doc.ElementByID("i"))
	if i.X <= l.X {
		t.Errorf("input (%v) should be right of label (%v)", i, l)
	}
	if absInt(i.CenterY()-l.CenterY()) > raster.LineH {
		t.Errorf("label and input should share a row: %v vs %v", l, i)
	}
}

func TestInlineContainerSubtreeBoxed(t *testing.T) {
	doc := dom.Parse(`<body><div><span id="s"><b>Bold label</b></span></div></body>`)
	res := Compute(doc, 600)
	s, _ := res.Box(doc.ElementByID("s"))
	bNode := doc.ElementsByTag("b")[0]
	b, ok := res.Box(bNode)
	if !ok {
		t.Fatal("nested inline element not boxed")
	}
	if b != s {
		t.Errorf("nested box %v != container box %v", b, s)
	}
}

func TestTinyViewportClamped(t *testing.T) {
	doc := dom.Parse(`<body><div>text</div></body>`)
	res := Compute(doc, 1)
	if res.Width < 64 {
		t.Errorf("viewport should clamp to >= 64, got %d", res.Width)
	}
}

func TestEmptyDocument(t *testing.T) {
	doc := dom.Parse("")
	res := Compute(doc, 400)
	if res.Height < 1 {
		t.Error("empty doc height must be >= 1")
	}
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func BenchmarkCompute(b *testing.B) {
	doc := dom.Parse(`<body><form>` +
		`<div><label>Name</label><input></div>` +
		`<div><label>Email</label><input></div>` +
		`<div><label>Card number</label><input></div>` +
		`<div><label>CVV</label><input></div>` +
		`<button>Submit</button></form></body>`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compute(doc, 800)
	}
}
