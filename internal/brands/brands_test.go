package brands

import (
	"math/rand"
	"testing"
)

func TestCatalogueIntegrity(t *testing.T) {
	seen := map[string]bool{}
	domains := map[string]bool{}
	for _, b := range All() {
		if b.Name == "" || b.LegitDomain == "" || b.LogoText == "" {
			t.Errorf("incomplete brand: %+v", b)
		}
		if seen[b.Name] {
			t.Errorf("duplicate brand name %q", b.Name)
		}
		seen[b.Name] = true
		if domains[b.LegitDomain] {
			t.Errorf("duplicate domain %q", b.LegitDomain)
		}
		domains[b.LegitDomain] = true
	}
	if Count() < 40 {
		t.Errorf("catalogue too small: %d", Count())
	}
}

func TestTop10MatchesTable7(t *testing.T) {
	want := []string{
		"Office365", "DHL Airways, Inc.", "Facebook, Inc.", "WhatsApp",
		"Tencent", "Crypto/Wallet", "Outlook", "La Banque Postale",
		"Chase Personal Banking", "M & T Bank Corporation",
	}
	top := Top10()
	if len(top) != 10 {
		t.Fatalf("Top10 returned %d brands", len(top))
	}
	for i, name := range want {
		if top[i].Name != name {
			t.Errorf("Top10[%d] = %q, want %q", i, top[i].Name, name)
		}
	}
}

func TestTable3BrandsExist(t *testing.T) {
	for _, name := range Table3Brands() {
		if _, ok := ByName(name); !ok {
			t.Errorf("Table 3 brand %q not in catalogue", name)
		}
	}
}

func TestEveryCategoryPopulated(t *testing.T) {
	for _, c := range Categories() {
		if len(ByCategory(c)) == 0 {
			t.Errorf("category %s has no brands", c)
		}
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("Netflix")
	if !ok || b.Category != OnlineCloud {
		t.Errorf("ByName(Netflix) = %+v, %v", b, ok)
	}
	if _, ok := ByName("No Such Brand"); ok {
		t.Error("unknown brand found")
	}
}

func TestDrawLogo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range Top10() {
		logo := b.DrawLogo(rng)
		if logo.W < 10 || logo.H < 10 {
			t.Errorf("%s logo degenerate: %dx%d", b.Name, logo.W, logo.H)
		}
		// Logo must be dominated by the brand color.
		h := logo.Histogram()
		if h[b.Color] < logo.W*logo.H/3 {
			t.Errorf("%s logo not brand-colored", b.Name)
		}
	}
}

func TestLegitScreenshotsDiffer(t *testing.T) {
	a := mustBrand(t, "Chase Personal Banking").LegitScreenshot()
	b := mustBrand(t, "Netflix").LegitScreenshot()
	if a.W != b.W || a.H != b.H {
		t.Fatal("screenshots should share canonical size")
	}
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			diff++
		}
	}
	if diff < len(a.Pix)/20 {
		t.Errorf("brand designs too similar: %d differing pixels", diff)
	}
	// Deterministic.
	a2 := mustBrand(t, "Chase Personal Banking").LegitScreenshot()
	for i := range a.Pix {
		if a.Pix[i] != a2.Pix[i] {
			t.Fatal("LegitScreenshot not deterministic")
		}
	}
}

func mustBrand(t *testing.T, name string) Brand {
	t.Helper()
	b, ok := ByName(name)
	if !ok {
		t.Fatalf("brand %q missing", name)
	}
	return b
}

func TestLegitScreenshotUsesColor(t *testing.T) {
	for _, b := range Top10() {
		img := b.LegitScreenshot()
		h := img.Histogram()
		if h[b.Color] == 0 {
			t.Errorf("%s legit page missing brand color", b.Name)
		}
		if img.W != 480 || img.H != 360 {
			t.Errorf("%s legit page wrong size", b.Name)
		}
	}
}
