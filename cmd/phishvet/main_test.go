package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestBadFlagsExitCode pins the CLI contract scripts depend on: every
// usage error is exit 2 with a message on stderr, never a silent 0 or a
// findings-style 1.
func TestBadFlagsExitCode(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown rule", []string{"-rules", "nope"}, "unknown rule"},
		{"unknown rule among valid", []string{"-rules", "maporder,nope"}, "unknown rule"},
		{"list validates rules first", []string{"-list", "-rules", "nope"}, "unknown rule"},
		{"undefined flag", []string{"-frobnicate"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("run(%v) = %d, want 2", tc.args, code)
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.wantErr)
			}
		})
	}
}

func TestListHonorsRuleSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list", "-rules", "maporder"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "maporder") || strings.Contains(out, "wallclock") {
		t.Errorf("-list -rules maporder printed:\n%s", out)
	}
}

// TestBrokenPackageExitCode pins the loader edge: source that parses but
// does not type-check must produce a clear stderr diagnostic and exit 2 —
// findings from a half-typed package are not trustworthy.
func TestBrokenPackageExitCode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"internal/phishvet/testdata/src/broken/..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr %s", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "broken.go") {
		t.Errorf("diagnostic %q does not name the failing file", msg)
	}
	if stdout.String() != "" {
		t.Errorf("broken package still produced findings:\n%s", stdout.String())
	}
}

// TestJSONOutput pins the machine-readable shape: one object per line,
// stable field order (file, line, col, rule, message), and the per-rule
// count breakdown in the stderr summary.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-rules", "maporder",
		"internal/phishvet/testdata/src/maporder/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON findings")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"file":`) {
			t.Errorf("field order not pinned, line starts: %.40s", line)
		}
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if f.Rule != "maporder" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if sum := stderr.String(); !strings.Contains(sum, "maporder:") {
		t.Errorf("summary %q lacks per-rule counts", sum)
	}
}

// TestAuditOutput runs the suppression inventory over the suppression
// fixture, which deliberately contains malformed ignores: they must be
// listed and flip the exit code to 1.
func TestAuditOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-audit",
		"internal/phishvet/testdata/src/suppression/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (fixture has malformed ignores); stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[malformed]") {
		t.Errorf("audit output lacks malformed entries:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "suppression(s)") {
		t.Errorf("missing audit summary, stderr %q", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-audit", "-json",
		"internal/phishvet/testdata/src/suppression/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("json audit exit %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var e jsonAudit
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad JSON audit line %q: %v", line, err)
		}
	}
}
