package fieldspec

import (
	"strings"
	"testing"
)

func TestEveryTypeHasGroup(t *testing.T) {
	for _, ty := range AllWithUnknown() {
		g := GroupOf(ty)
		switch g {
		case GroupLogin, GroupPersonal, GroupSocial, GroupFinancial, GroupOther:
		default:
			t.Errorf("type %s has bad group %q", ty, g)
		}
	}
}

func TestTable6GroupAssignments(t *testing.T) {
	// Spot-check against Table 6's section headings.
	want := map[Type]Group{
		Email: GroupLogin, UserID: GroupLogin, Password: GroupLogin,
		Name: GroupPersonal, Code: GroupPersonal, Date: GroupPersonal,
		License: GroupSocial, SSN: GroupSocial,
		Card: GroupFinancial, ExpDate: GroupFinancial, CVV: GroupFinancial,
		Search: GroupOther,
	}
	for ty, g := range want {
		if got := GroupOf(ty); got != g {
			t.Errorf("GroupOf(%s) = %s, want %s", ty, got, g)
		}
	}
}

func TestAllCount(t *testing.T) {
	// Table 6 lists 18 concrete categories.
	if got := len(All()); got != 18 {
		t.Errorf("len(All()) = %d, want 18", got)
	}
	for _, ty := range All() {
		if ty == Unknown {
			t.Error("All() must not include Unknown")
		}
	}
	if got := len(AllWithUnknown()); got != 19 {
		t.Errorf("len(AllWithUnknown()) = %d, want 19", got)
	}
}

func TestAllSortedAndStable(t *testing.T) {
	a, b := All(), All()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("All() not stable")
		}
		if i > 0 && a[i-1] >= a[i] {
			t.Fatal("All() not sorted")
		}
	}
}

func TestEveryTypeHasKeywords(t *testing.T) {
	for _, ty := range All() {
		ks := Keywords[ty]
		if len(ks) < 5 {
			t.Errorf("type %s has only %d keywords, want >= 5", ty, len(ks))
		}
		for _, k := range ks {
			if k != strings.ToLower(k) {
				t.Errorf("keyword %q for %s is not lower-case", k, ty)
			}
		}
	}
}

func TestValid(t *testing.T) {
	if !Valid(Email) || !Valid(Unknown) {
		t.Error("known types reported invalid")
	}
	if Valid(Type("bogus")) {
		t.Error("bogus type reported valid")
	}
}

func TestGuessFromHTMLType(t *testing.T) {
	cases := map[string]Type{
		"email": Email, "EMAIL": Email, " password ": Password,
		"tel": Phone, "date": Date, "search": Search,
		"text": Unknown, "": Unknown, "checkbox": Unknown,
	}
	for in, want := range cases {
		if got := GuessFromHTMLType(in); got != want {
			t.Errorf("GuessFromHTMLType(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestPhraseAt(t *testing.T) {
	if CanonicalPhrase(Email) != "email" {
		t.Errorf("CanonicalPhrase(Email) = %q", CanonicalPhrase(Email))
	}
	n := len(Keywords[Password])
	if PhraseAt(Password, 0) != PhraseAt(Password, n) {
		t.Error("PhraseAt should wrap modulo len")
	}
	if PhraseAt(Password, -1) == "" {
		t.Error("PhraseAt should handle negative indices")
	}
}

func TestLoginTypes(t *testing.T) {
	lt := LoginTypes()
	for _, ty := range []Type{Email, UserID, Password, Phone} {
		if !lt[ty] {
			t.Errorf("LoginTypes missing %s", ty)
		}
	}
	if lt[Card] || lt[SSN] {
		t.Error("LoginTypes includes non-login types")
	}
}

func TestIsTwoFactorLabel(t *testing.T) {
	positives := []string{
		"Enter the OTP sent to your phone",
		"An otp has been sent to the registered mobile number",
		"2-step verification code",
		"We sent an SMS to your number",
		"Enter your 2FA code",
		"6 digit code",
	}
	for _, p := range positives {
		if !IsTwoFactorLabel(p) {
			t.Errorf("IsTwoFactorLabel(%q) = false, want true", p)
		}
	}
	negatives := []string{"postal code", "zip code", "promo code please", "enter your name"}
	for _, n := range negatives {
		if IsTwoFactorLabel(n) {
			t.Errorf("IsTwoFactorLabel(%q) = true, want false", n)
		}
	}
}

func TestKeywordsDistinguishCVVFromCode(t *testing.T) {
	// "security code" belongs to CVV bank; "verification code" to Code bank.
	found := func(ty Type, phrase string) bool {
		for _, k := range Keywords[ty] {
			if k == phrase {
				return true
			}
		}
		return false
	}
	if !found(CVV, "security code") {
		t.Error("CVV bank should contain 'security code'")
	}
	if !found(Code, "verification code") {
		t.Error("Code bank should contain 'verification code'")
	}
}
