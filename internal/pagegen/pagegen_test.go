package pagegen

import (
	"math/rand"
	"testing"

	"repro/internal/captcha"
	"repro/internal/vision"
)

func TestGenerateHasRequiredAnnotations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sawCaptcha := false
	for i := 0; i < 50; i++ {
		ex := Generate(rng, Config{})
		if ex.Image == nil {
			t.Fatal("nil image")
		}
		classes := map[string]int{}
		for _, an := range ex.Annotations {
			classes[an.Class]++
			if an.Box.Empty() {
				t.Errorf("empty annotation box for %s", an.Class)
			}
			if an.Box.X < 0 || an.Box.Y < 0 ||
				an.Box.X+an.Box.W > ex.Image.W || an.Box.Y+an.Box.H > ex.Image.H {
				t.Errorf("annotation %s box %v outside %dx%d page",
					an.Class, an.Box, ex.Image.W, ex.Image.H)
			}
		}
		if classes[vision.ClassLogo] != 1 {
			t.Errorf("page %d: %d logos", i, classes[vision.ClassLogo])
		}
		if classes[vision.ClassButton] != 1 {
			t.Errorf("page %d: %d buttons", i, classes[vision.ClassButton])
		}
		for c := range classes {
			if c != vision.ClassLogo && c != vision.ClassButton {
				sawCaptcha = true
			}
		}
	}
	if !sawCaptcha {
		t.Error("no page carried a CAPTCHA at default probability 0.7")
	}
}

func TestAnnotationsDoNotOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		ex := Generate(rng, Config{})
		for a := 0; a < len(ex.Annotations); a++ {
			for b := a + 1; b < len(ex.Annotations); b++ {
				if ex.Annotations[a].Box.IoU(ex.Annotations[b].Box) > 0.1 {
					t.Errorf("annotations overlap: %+v vs %+v",
						ex.Annotations[a], ex.Annotations[b])
				}
			}
		}
	}
}

func TestGenerateSetDeterministic(t *testing.T) {
	a := GenerateSet(5, 99, Config{})
	b := GenerateSet(5, 99, Config{})
	if len(a) != 5 || len(b) != 5 {
		t.Fatal("wrong set size")
	}
	for i := range a {
		if len(a[i].Annotations) != len(b[i].Annotations) {
			t.Fatal("sets differ under same seed")
		}
		for j := range a[i].Image.Pix {
			if a[i].Image.Pix[j] != b[i].Image.Pix[j] {
				t.Fatal("pixel data differs under same seed")
			}
		}
	}
}

func TestCaptchaProbZeroAndOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	withCaptcha := 0
	for i := 0; i < 20; i++ {
		ex := Generate(rng, Config{CaptchaProb: 1.0})
		for _, an := range ex.Annotations {
			if an.Class != vision.ClassLogo && an.Class != vision.ClassButton {
				withCaptcha++
			}
		}
	}
	if withCaptcha < 15 {
		t.Errorf("CaptchaProb=1 yielded only %d captchas in 20 pages", withCaptcha)
	}
	none := 0
	for i := 0; i < 20; i++ {
		ex := Generate(rng, Config{CaptchaProb: -1})
		for _, an := range ex.Annotations {
			if an.Class != vision.ClassLogo && an.Class != vision.ClassButton {
				none++
			}
		}
	}
	if none != 0 {
		t.Errorf("CaptchaProb<0 still produced %d captchas", none)
	}
}

func TestCaptchaCrops(t *testing.T) {
	crops := CaptchaCrops(captcha.Visual1, 5, 7)
	if len(crops) != 5 {
		t.Fatalf("got %d crops", len(crops))
	}
	for _, c := range crops {
		if c.W < 20 || c.H < 20 {
			t.Error("degenerate crop")
		}
	}
	// Deterministic under same seed.
	again := CaptchaCrops(captcha.Visual1, 5, 7)
	for i := range crops {
		if crops[i].W != again[i].W || crops[i].H != again[i].H {
			t.Error("crops not deterministic")
		}
	}
}

func TestTrainDetectorOnGeneratedPages(t *testing.T) {
	// End-to-end: train on generated pages, evaluate on fresh ones — a
	// miniature of the Table 5 protocol (10k/1k/2k in the bench).
	train := GenerateSet(150, 1, Config{})
	test := GenerateSet(40, 2, Config{})
	d, err := vision.Train(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := vision.Evaluate(d, test)
	if res.MeanAP < 0.5 {
		t.Errorf("mean AP on generated pages = %.2f; per-class %v", res.MeanAP, res.APPerClass)
	}
	if res.SupportPerClass[vision.ClassButton] != 40 {
		t.Errorf("button support = %d, want 40", res.SupportPerClass[vision.ClassButton])
	}
}
