package farm

import (
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/metrics"
	"repro/internal/phishserver"
)

// streamFixture builds a registry of n quick sites and returns their URLs.
func streamFixture(t *testing.T, base, n int) (*phishserver.Registry, []string) {
	t.Helper()
	reg := phishserver.NewRegistry()
	var urls []string
	for i := 0; i < n; i++ {
		s := quickSite(fmtHost(base + i))
		reg.AddSite(s)
		urls = append(urls, s.SeedURL())
	}
	return reg, urls
}

func TestRunStreamDeliversEverySessionOnce(t *testing.T) {
	reg, urls := streamFixture(t, 300, 30)
	got := map[int]*crawler.SessionLog{}
	stats, err := RunStream(Config{
		Workers: 6,
		Crawler: testCrawler(reg, nil),
		Sink: func(idx int, lg *crawler.SessionLog) error {
			// Calls are serialized: no locking here, by contract.
			if _, dup := got[idx]; dup {
				t.Errorf("index %d delivered twice", idx)
			}
			got[idx] = lg
			return nil
		},
	}, urls)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if len(got) != len(urls) {
		t.Fatalf("sink saw %d sessions, want %d", len(got), len(urls))
	}
	for idx, lg := range got {
		if lg.SeedURL != urls[idx] {
			t.Errorf("index %d carries URL %s, want %s", idx, lg.SeedURL, urls[idx])
		}
		if lg.FeedIndex != idx {
			t.Errorf("FeedIndex = %d, want %d", lg.FeedIndex, idx)
		}
	}
	if stats.Sites != len(urls) {
		t.Errorf("Sites = %d, want %d", stats.Sites, len(urls))
	}
}

// TestRunStreamConcurrentSink pins the SinkConcurrent contract: deliveries
// may overlap (the sink must lock for itself), but every session still
// arrives exactly once with its own index, and a sink error still stops
// new deliveries and surfaces from RunStream.
func TestRunStreamConcurrentSink(t *testing.T) {
	reg, urls := streamFixture(t, 640, 30)
	var mu sync.Mutex
	got := map[int]*crawler.SessionLog{}
	stats, err := RunStream(Config{
		Workers:        6,
		Crawler:        testCrawler(reg, nil),
		SinkConcurrent: true,
		Sink: func(idx int, lg *crawler.SessionLog) error {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[idx]; dup {
				t.Errorf("index %d delivered twice", idx)
			}
			got[idx] = lg
			return nil
		},
	}, urls)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if len(got) != len(urls) {
		t.Fatalf("sink saw %d sessions, want %d", len(got), len(urls))
	}
	for idx, lg := range got {
		if lg.SeedURL != urls[idx] || lg.FeedIndex != idx {
			t.Errorf("index %d carries URL %s FeedIndex %d, want %s/%d", idx, lg.SeedURL, lg.FeedIndex, urls[idx], idx)
		}
	}
	if stats.Sites != len(urls) {
		t.Errorf("Sites = %d, want %d", stats.Sites, len(urls))
	}
}

// TestRunStreamConcurrentSinkError: the first error a concurrent sink
// returns is surfaced, and once it is recorded no new delivery starts
// (in-flight ones may finish — the count stays well below the site count).
func TestRunStreamConcurrentSinkError(t *testing.T) {
	reg, urls := streamFixture(t, 680, 16)
	boom := errors.New("disk full")
	var mu sync.Mutex
	calls := 0
	_, err := RunStream(Config{
		Workers:        4,
		Crawler:        testCrawler(reg, nil),
		SinkConcurrent: true,
		Sink: func(int, *crawler.SessionLog) error {
			mu.Lock()
			calls++
			n := calls
			mu.Unlock()
			if n == 3 {
				return boom
			}
			return nil
		},
	}, urls)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	// At most Workers deliveries could already be in flight when the error
	// landed; everything after must have been suppressed.
	if calls >= len(urls) {
		t.Errorf("sink called %d times, error did not stop deliveries", calls)
	}
}

func TestRunStreamRequiresSink(t *testing.T) {
	if _, err := RunStream(Config{Crawler: testCrawler(phishserver.NewRegistry(), nil)}, nil); err == nil {
		t.Fatal("RunStream without a sink must error")
	}
}

func TestRunStreamSurfacesFirstSinkError(t *testing.T) {
	reg, urls := streamFixture(t, 340, 12)
	boom := errors.New("disk full")
	calls := 0
	stats, err := RunStream(Config{
		Workers: 4,
		Crawler: testCrawler(reg, nil),
		Sink: func(int, *crawler.SessionLog) error {
			calls++
			if calls == 3 {
				return boom
			}
			return nil
		},
	}, urls)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	// The crawl itself still finishes and counts every session, and after
	// the first failure the sink is never called again.
	if stats.Sites != len(urls) {
		t.Errorf("Sites = %d, want %d", stats.Sites, len(urls))
	}
	if calls != 3 {
		t.Errorf("sink called %d times after error, want exactly 3", calls)
	}
}

func TestSkipPreservesSeedDerivation(t *testing.T) {
	reg, urls := streamFixture(t, 360, 20)
	full, _ := Run(Config{Workers: 4, Crawler: testCrawler(reg, nil)}, urls)

	// Crawl only the odd indices; their sessions must be byte-for-byte the
	// sessions the full run produced at the same indices (same derived
	// seeds), which is what makes journal resume reproduce a clean run.
	partial := map[int]*crawler.SessionLog{}
	_, err := RunStream(Config{
		Workers: 4,
		Crawler: testCrawler(reg, nil),
		Skip:    func(idx int, _ string) bool { return idx%2 == 0 },
		Sink: func(idx int, lg *crawler.SessionLog) error {
			partial[idx] = lg
			return nil
		},
	}, urls)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if len(partial) != 10 {
		t.Fatalf("crawled %d sessions, want 10", len(partial))
	}
	for idx, lg := range partial {
		if idx%2 == 0 {
			t.Fatalf("skipped index %d was crawled", idx)
		}
		want := full[idx]
		// Timestamps differ between runs; compare the content that the
		// derived seed controls.
		if lg.SeedURL != want.SeedURL || lg.Outcome != want.Outcome || len(lg.Pages) != len(want.Pages) {
			t.Errorf("index %d: resumed session diverged: %+v vs %+v", idx, lg, want)
		}
		for pi := range lg.Pages {
			if !reflect.DeepEqual(lg.Pages[pi].Fields, want.Pages[pi].Fields) {
				t.Errorf("index %d page %d: filled fields diverged", idx, pi)
			}
		}
	}
}

func TestTallyMatchesRunStats(t *testing.T) {
	reg, urls := streamFixture(t, 380, 25)
	logs, stats := Run(Config{Workers: 5, Crawler: testCrawler(reg, nil)}, urls)
	got := Tally(logs)
	if got.Sites != stats.Sites {
		t.Errorf("Sites = %d, want %d", got.Sites, stats.Sites)
	}
	if !reflect.DeepEqual(got.Outcomes, stats.Outcomes) {
		t.Errorf("Outcomes = %v, want %v", got.Outcomes, stats.Outcomes)
	}
	if !reflect.DeepEqual(got.Failures, stats.Failures) {
		t.Errorf("Failures = %v, want %v", got.Failures, stats.Failures)
	}
	if got.Degraded != stats.Degraded {
		t.Errorf("Degraded = %d, want %d", got.Degraded, stats.Degraded)
	}
	// Stages fold from the journaled traces and must match what the live
	// run derived from the very same finished sessions — the single-source
	// property that keeps resumed stats equal to uninterrupted stats.
	if !reflect.DeepEqual(got.Stages, stats.Stages) {
		t.Errorf("Tally Stages = %+v, want the run's %+v", got.Stages, stats.Stages)
	}
	if got.Retries != stats.Retries {
		t.Errorf("Retries = %d, want %d", got.Retries, stats.Retries)
	}
	// Run-level facts a log cannot carry stay zero.
	if got.Elapsed != 0 || got.Panics != 0 {
		t.Errorf("Tally invented run-level stats: %+v", got)
	}
}

func TestTallyCountsNilAsLost(t *testing.T) {
	logs := []*crawler.SessionLog{
		{Outcome: crawler.OutcomeCompleted, Attempts: 1},
		nil,
		{Outcome: OutcomeGaveUp, Error: "dead", Attempts: 3},
		{Outcome: crawler.OutcomeCompleted, Attempts: 2},
	}
	s := Tally(logs)
	if s.Sites != 4 {
		t.Errorf("Sites = %d", s.Sites)
	}
	if s.Outcomes[OutcomeLost] != 1 {
		t.Errorf("lost = %d, want 1", s.Outcomes[OutcomeLost])
	}
	if s.Retries != 3 { // (1-1) + (3-1) + (2-1)
		t.Errorf("Retries = %d, want 3", s.Retries)
	}
	if s.Degraded != 1 {
		t.Errorf("Degraded = %d, want 1", s.Degraded)
	}
	if s.Failures["dead"] != 1 {
		t.Errorf("Failures = %v", s.Failures)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{
		Sites:    10,
		Elapsed:  2 * time.Second,
		Retries:  1,
		Degraded: 1,
		Panics:   0,
		Outcomes: map[string]int{"completed": 9, "gave-up": 1},
		Failures: map[string]int{"dead": 1},
		Stages: []metrics.StageStat{
			{Stage: "render", Count: 20, Total: time.Second},
		},
	}
	b := Stats{
		Sites:    5,
		Elapsed:  time.Second,
		Retries:  2,
		Degraded: 0,
		Panics:   1,
		Outcomes: map[string]int{"completed": 5},
		Stages: []metrics.StageStat{
			{Stage: "render", Count: 10, Total: time.Second},
			{Stage: "ocr", Count: 3, Total: time.Millisecond},
		},
	}
	a.Merge(b)
	if a.Sites != 15 || a.Elapsed != 3*time.Second || a.Retries != 3 || a.Panics != 1 {
		t.Errorf("merged = %+v", a)
	}
	if a.Outcomes["completed"] != 14 || a.Outcomes["gave-up"] != 1 {
		t.Errorf("Outcomes = %v", a.Outcomes)
	}
	var stages []string
	for _, st := range a.Stages {
		stages = append(stages, string(st.Stage))
	}
	sort.Strings(stages)
	if len(a.Stages) != 2 {
		t.Fatalf("Stages = %v", stages)
	}
	for _, st := range a.Stages {
		if st.Stage == "render" && (st.Count != 30 || st.Total != 2*time.Second) {
			t.Errorf("render stage = %+v", st)
		}
	}

	// Merging into a zero value initializes the maps.
	var z Stats
	z.Merge(b)
	if z.Outcomes["completed"] != 5 || z.Sites != 5 {
		t.Errorf("zero-value merge = %+v", z)
	}
}
