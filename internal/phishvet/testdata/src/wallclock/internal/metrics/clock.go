// Package metrics mimics the production clock seam: the wallclock rule
// exempts any internal/metrics package, so these reads produce no findings.
package metrics

import "time"

// Now is the sanctioned wall-clock read.
func Now() time.Time { return time.Now() }
