package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/crawler"
	"repro/internal/farm"
)

// TestSyncGroupEquivalence pins group commit to the SyncAlways format
// record-for-record: the same sequence of appends must produce identical
// records (sequence, kind, payload) and, since framing is deterministic,
// byte-identical segment files. SyncGroup changes when fsync happens, never
// what is written.
func TestSyncGroupEquivalence(t *testing.T) {
	dirAlways, dirGroup := t.TempDir(), t.TempDir()
	ja := mustOpen(t, dirAlways, Options{Sync: SyncAlways})
	jg := mustOpen(t, dirGroup, Options{Sync: SyncGroup})
	for _, j := range []*Journal{ja, jg} {
		appendN(t, j, 8, 0)
		if err := j.AppendStats(farm.Stats{Sites: 8}); err != nil {
			t.Fatalf("AppendStats: %v", err)
		}
		appendN(t, j, 3, 8)
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}

	collect := func(dir string) []Record {
		j := mustOpen(t, dir, Options{})
		defer j.Close()
		var recs []Record
		if err := j.Scan(func(r Record) error { recs = append(recs, r); return nil }); err != nil {
			t.Fatalf("Scan(%s): %v", dir, err)
		}
		return recs
	}
	ra, rg := collect(dirAlways), collect(dirGroup)
	if len(ra) != len(rg) {
		t.Fatalf("record counts differ: SyncAlways %d, SyncGroup %d", len(ra), len(rg))
	}
	for i := range ra {
		if ra[i].Seq != rg[i].Seq || ra[i].Kind != rg[i].Kind || string(ra[i].Payload) != string(rg[i].Payload) {
			t.Fatalf("record %d differs:\nSyncAlways seq=%d kind=%d %s\nSyncGroup  seq=%d kind=%d %s",
				i, ra[i].Seq, ra[i].Kind, ra[i].Payload, rg[i].Seq, rg[i].Kind, rg[i].Payload)
		}
	}

	segsA, _ := listSegments(dirAlways)
	segsG, _ := listSegments(dirGroup)
	if len(segsA) != len(segsG) {
		t.Fatalf("segment counts differ: %v vs %v", segsA, segsG)
	}
	for i := range segsA {
		a, err := os.ReadFile(filepath.Join(dirAlways, segsA[i]))
		if err != nil {
			t.Fatal(err)
		}
		g, err := os.ReadFile(filepath.Join(dirGroup, segsG[i]))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(g) {
			t.Fatalf("segment %s differs between policies", segsA[i])
		}
	}
}

// TestSyncGroupConcurrentAppends drives group commit the way the farm does
// — many goroutines appending at once — and verifies nothing is lost,
// reordered into invalid sequence numbers, or torn: after Close, a reopen
// must hold every session exactly once with contiguous sequences.
func TestSyncGroupConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Sync: SyncGroup})
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = j.AppendSession(testSession(i, fmt.Sprintf("http://host%d.example/login", i), "completed"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if got := j2.CompletedCount(); got != n {
		t.Fatalf("CompletedCount = %d, want %d", got, n)
	}
	seen := map[uint64]bool{}
	var maxSeq uint64
	if err := j2.Scan(func(r Record) error {
		if seen[r.Seq] {
			return fmt.Errorf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n || maxSeq != n {
		t.Fatalf("sequences not contiguous: %d records, max seq %d, want %d", len(seen), maxSeq, n)
	}
}

// groupBatch white-box commits logs as ONE group-commit batch, the way a
// burst of concurrent appenders would land together, so crash tests can
// tear the tail at a known batch boundary.
func groupBatch(t *testing.T, j *Journal, logs []*crawler.SessionLog) {
	t.Helper()
	j.mu.Lock()
	for _, lg := range logs {
		payload, err := json.Marshal(lg)
		if err != nil {
			j.mu.Unlock()
			t.Fatal(err)
		}
		j.pending = append(j.pending, &groupReq{
			kind: KindSession, payload: payload, url: lg.SeedURL, done: make(chan error, 1),
		})
	}
	err := j.flushPendingLocked()
	j.mu.Unlock()
	if err != nil {
		t.Fatalf("group batch commit: %v", err)
	}
}

// TestSyncGroupCrashLossBound is the crash-loss table test for group
// commit: with one batch durably committed and a second batch torn at
// EVERY possible byte offset (a crash mid-batch-write), reopening must
// never lose a record from the first batch — the loss bound is "records of
// the unacknowledged batch only" — must keep every whole frame before the
// tear, and must stay appendable.
func TestSyncGroupCrashLossBound(t *testing.T) {
	master := t.TempDir()
	j := mustOpen(t, master, Options{Sync: SyncGroup})
	first := make([]*crawler.SessionLog, 3)
	for i := range first {
		first[i] = testSession(i, "http://host"+itoa(i)+".example/login", "completed")
	}
	groupBatch(t, j, first)
	second := make([]*crawler.SessionLog, 4)
	for i := range second {
		second[i] = testSession(10+i, "http://burst"+itoa(i)+".example/login", "completed")
	}
	groupBatch(t, j, second)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one segment, got %v (%v)", segs, err)
	}
	segName := segs[0]
	whole, err := os.ReadFile(filepath.Join(master, segName))
	if err != nil {
		t.Fatal(err)
	}
	// frameEnds[i] is the byte offset where frame i ends; the second batch
	// starts at frameEnds[2].
	var frameEnds []int
	for off := 0; off < len(whole); {
		_, n, err := decodeFrame(whole[off:])
		if err != nil {
			t.Fatalf("decoding frame at %d: %v", off, err)
		}
		off += n
		frameEnds = append(frameEnds, off)
	}
	if len(frameEnds) != 7 {
		t.Fatalf("expected 7 frames, found %d", len(frameEnds))
	}
	batchStart := frameEnds[2]

	manifestData, err := os.ReadFile(filepath.Join(master, manifestName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := batchStart; cut < len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), manifestData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// How many whole frames survive this cut?
		wholeFrames := 0
		for _, end := range frameEnds {
			if end <= cut {
				wholeFrames++
			}
		}

		jr, err := Open(dir, Options{Sync: SyncGroup})
		if err != nil {
			t.Fatalf("cut at byte %d: Open failed: %v", cut, err)
		}
		if got := jr.CompletedCount(); got != wholeFrames {
			t.Fatalf("cut at byte %d: CompletedCount = %d, want %d", cut, got, wholeFrames)
		}
		// The loss bound: the durably-committed first batch always survives.
		for _, lg := range first {
			if !jr.Completed(lg.SeedURL) {
				t.Fatalf("cut at byte %d: lost %s from the acknowledged batch", cut, lg.SeedURL)
			}
		}
		// The healed journal keeps accepting group commits where it left off.
		if err := jr.AppendSession(testSession(99, "http://resumed.example/login", "completed")); err != nil {
			t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
		}
		if err := jr.Close(); err != nil {
			t.Fatalf("cut at byte %d: Close: %v", cut, err)
		}
		j2 := mustOpen(t, dir, Options{})
		if got := j2.CompletedCount(); got != wholeFrames+1 {
			t.Fatalf("cut at byte %d: reopen lost the healed append", cut)
		}
		j2.Close()
	}
}
