// Package farm runs crawl sessions at scale, modelling the Docker-based
// crawler farm of Section 4.6: a pool of parallel workers, each giving
// every site a fresh browser profile (the paper's clean container per
// session), with aggregate throughput accounting (the paper sustains more
// than 1,000 sites per day on 30 parallel sessions). Because real feeds
// are full of dead, slow, and flaky sites, the farm also carries the
// operational machinery a production crawl needs: a retry queue with
// capped exponential backoff and deterministic jitter for transient
// failures, a per-session panic guard so one bad site cannot kill a
// worker, and a failure taxonomy in its Stats.
package farm

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crawler"
	"repro/internal/metrics"
)

// DefaultWorkers matches the paper's 30 parallel Docker sessions.
const DefaultWorkers = 30

// DefaultMaxRetries is how many extra attempts a transiently-failed
// session gets before the farm gives up.
const DefaultMaxRetries = 2

// Default backoff bounds, tuned to the synthetic corpus's timescale
// (sessions complete in milliseconds; a real deployment would configure
// seconds-to-minutes here).
const (
	defaultRetryBase = 25 * time.Millisecond
	defaultRetryMax  = 400 * time.Millisecond
)

// OutcomeLost is the Stats.Outcomes key counting sessions that produced no
// log at all — a worker never wrote one — so outcome counts always sum to
// Sites and silent losses are visible in the report.
const OutcomeLost = "lost"

// OutcomeGaveUp replaces a transient-failure outcome once retries are
// exhausted; the underlying classification is preserved in
// SessionLog.Error and tallied in Stats.Failures.
const OutcomeGaveUp = "gave-up"

// OutcomePanic classifies a session whose crawl panicked and was recovered
// by the worker guard. Panics are treated as transient (retryable).
const OutcomePanic = "panic"

// Config configures a crawl farm.
type Config struct {
	// Workers is the parallel session count (default 30).
	Workers int
	// Crawler is the shared crawler template; its NewBrowser hook supplies
	// the per-session fresh profile.
	Crawler *crawler.Crawler
	// MaxRetries is how many extra attempts a transiently-failed session
	// gets before the farm gives up (0 = DefaultMaxRetries; negative
	// disables retrying).
	MaxRetries int
	// RetryBase is the backoff before the first retry; each further retry
	// doubles it (default 25ms at synthetic timescale).
	RetryBase time.Duration
	// RetryMax caps the exponential backoff (default 400ms).
	RetryMax time.Duration
	// RetrySeed drives the deterministic backoff jitter, so a run's retry
	// schedule is reproducible from its seeds.
	RetrySeed int64
}

// Stats summarizes a finished run.
type Stats struct {
	Sites    int
	Elapsed  time.Duration
	Outcomes map[string]int
	// Stages is the per-stage timing breakdown (render, OCR, detect,
	// submit) aggregated across every worker, in stage order.
	Stages []metrics.StageStat
	// Retries counts re-queued attempts beyond each session's first.
	Retries int
	// Degraded counts sessions that reached a non-failure outcome only
	// after at least one retry — the crawl completed, but the site made
	// it fight for it.
	Degraded int
	// Panics counts worker panics the guard recovered (including ones
	// whose retry later succeeded).
	Panics int
	// Failures is the failure taxonomy of gave-up sessions: the last
	// classified failure (dead, timeout, server-error, truncated, error,
	// panic) per site that exhausted its retries.
	Failures map[string]int
}

// SitesPerDay extrapolates throughput.
func (s Stats) SitesPerDay() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Sites) / s.Elapsed.Seconds() * 86400
}

// job is one queued crawl attempt.
type job struct {
	idx     int
	attempt int // 0 = first try
}

// Run crawls every URL with the configured parallelism and returns the
// session logs in input order plus run statistics. Sessions that fail with
// a transient (retryable) outcome are re-queued with capped exponential
// backoff up to MaxRetries times; a session that panics is recovered,
// classified, and retried like any other transient failure, so one bad
// site never costs a worker or loses the run.
func Run(cfg Config, urls []string) ([]*crawler.SessionLog, Stats) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	if workers > len(urls) && len(urls) > 0 {
		workers = len(urls)
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = DefaultMaxRetries
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	retryBase, retryMax := cfg.RetryBase, cfg.RetryMax
	if retryBase <= 0 {
		retryBase = defaultRetryBase
	}
	if retryMax < retryBase {
		retryMax = defaultRetryMax
	}
	if retryMax < retryBase {
		retryMax = retryBase
	}

	logs := make([]*crawler.SessionLog, len(urls))
	// All workers record into one shared stage-timing collector (it is
	// atomic inside); reuse the template's when the caller installed one so
	// timings accumulate across Run calls.
	timings := cfg.Crawler.Timings
	if timings == nil {
		timings = &metrics.StageTimings{}
	}
	start := time.Now()
	var (
		wg      sync.WaitGroup
		pending sync.WaitGroup // open jobs: one per URL until its final attempt lands
		retries int64
		panics  int64
	)
	// Buffered to the full job count so neither the producer nor a retry
	// timer ever blocks: each URL has at most one outstanding job at any
	// moment, so capacity len(urls) suffices.
	jobs := make(chan job, len(urls))
	pending.Add(len(urls))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker gets its own crawler so faker sequences differ
			// across sessions without shared state.
			c := *cfg.Crawler
			c.Timings = timings
			for jb := range jobs {
				// The faker seed derives from the job index (not the worker
				// or the attempt), which keeps runs reproducible across
				// worker counts and makes retries exact re-executions.
				c.FakerSeed = cfg.Crawler.FakerSeed + int64(jb.idx)*7919
				lg := crawlGuarded(&c, urls[jb.idx], &panics)
				if retryable(lg.Outcome) {
					if jb.attempt < maxRetries {
						atomic.AddInt64(&retries, 1)
						next := job{idx: jb.idx, attempt: jb.attempt + 1}
						time.AfterFunc(
							backoffDelay(retryBase, retryMax, next.attempt, cfg.RetrySeed, next.idx),
							func() { jobs <- next })
						continue
					}
					// Retries exhausted: keep the taxonomy class in Error.
					lg.Error = lg.Outcome
					lg.Outcome = OutcomeGaveUp
				}
				lg.Attempts = jb.attempt + 1
				logs[jb.idx] = lg
				pending.Done()
			}
		}()
	}
	for i := range urls {
		jobs <- job{idx: i}
	}
	go func() {
		// Close only once every URL has a final log; retry timers always
		// fire before that, so no send can race the close.
		pending.Wait()
		close(jobs)
	}()
	wg.Wait()

	stats := Stats{
		Sites:    len(urls),
		Elapsed:  time.Since(start),
		Outcomes: map[string]int{},
		Stages:   timings.Snapshot(),
		Retries:  int(atomic.LoadInt64(&retries)),
		Panics:   int(atomic.LoadInt64(&panics)),
		Failures: map[string]int{},
	}
	for _, l := range logs {
		if l == nil {
			stats.Outcomes[OutcomeLost]++
			continue
		}
		stats.Outcomes[l.Outcome]++
		if l.Outcome == OutcomeGaveUp {
			stats.Failures[l.Error]++
		} else if l.Attempts > 1 {
			stats.Degraded++
		}
	}
	return logs, stats
}

// retryable extends the crawler's transient-failure set with the farm's
// own panic classification.
func retryable(outcome string) bool {
	return crawler.Retryable(outcome) || outcome == OutcomePanic
}

// crawlGuarded runs one session under the per-worker panic guard: a panic
// anywhere in the crawl (browser, renderer, models) is recovered into a
// classified, retryable session log instead of killing the worker.
func crawlGuarded(c *crawler.Crawler, url string, panics *int64) (lg *crawler.SessionLog) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(panics, 1)
			lg = &crawler.SessionLog{
				SeedURL: url,
				Outcome: OutcomePanic,
				Error:   fmt.Sprintf("recovered panic: %v", r),
			}
		}
	}()
	lg = c.Crawl(url)
	if lg == nil {
		lg = &crawler.SessionLog{SeedURL: url, Outcome: OutcomeLost}
	}
	return lg
}

// backoffDelay computes the capped exponential backoff before attempt
// (1-based), jittered deterministically into [d/2, d] by hashing
// (seed, idx, attempt) — the full-jitter scheme real crawl farms use to
// de-synchronize retry bursts, made reproducible for the determinism
// tests.
func backoffDelay(base, max time.Duration, attempt int, seed int64, idx int) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d", seed, idx, attempt)
	half := uint64(d / 2)
	if half == 0 {
		return d
	}
	return d/2 + time.Duration(h.Sum64()%(half+1))
}
