// Package locknoblock exercises the locknoblock rule: a mutex held
// across a blocking operation — directly, or through any statically
// resolvable call chain — is flagged at the Lock site, so one
// suppression on the Lock line covers the whole critical section.
package locknoblock

import (
	"net/http"
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	f  *os.File
	n  int
}

// File I/O reached through a helper: the call graph carries the block
// from writeLocked's f.Write back to the Lock.
func (s *store) flush(data []byte) error {
	s.mu.Lock() // want "s.mu is held across a blocking operation: call to \(\*locknoblock.store\).writeLocked, which reaches call to \(\*os.File\).Write"
	defer s.mu.Unlock()
	return s.writeLocked(data)
}

func (s *store) writeLocked(data []byte) error {
	if _, err := s.f.Write(data); err != nil {
		return err
	}
	return s.f.Sync()
}

// A channel send is a blocking operation like any other.
func (s *store) publish(ch chan int) {
	s.mu.Lock() // want "s.mu is held across a blocking operation: channel send"
	ch <- s.n
	s.mu.Unlock()
}

// The early-unlock guard terminates its branch, so the fallthrough path
// below it still holds the lock when it sends.
func (s *store) guarded(ch chan int, closed bool) {
	s.mu.Lock() // want "s.mu is held across a blocking operation: channel send"
	if closed {
		s.mu.Unlock()
		return
	}
	ch <- s.n
	s.mu.Unlock()
}

// Unlocking before the write keeps the critical section pure: clean.
func (s *store) clean(data []byte) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	_, err := s.f.Write(data)
	return err
}

// A mid-function unlock on a falling-through path releases the region:
// the receive and the re-lock are the journal Close idiom, clean.
func (s *store) handoff(done chan struct{}, group bool) {
	s.mu.Lock()
	if group {
		s.mu.Unlock()
		<-done
		s.mu.Lock()
	}
	s.n *= 2
	s.mu.Unlock()
}

type table struct {
	mu sync.RWMutex
	v  string
}

// An HTTP round-trip under a read lock queues every writer behind the
// network.
func (t *table) fetch(c *http.Client, url string) (*http.Response, error) {
	t.mu.RLock() // want "t.mu is held across a blocking operation: call to \(\*http.Client\).Get"
	defer t.mu.RUnlock()
	return c.Get(url)
}

// A select with a default arm is a poll, not a park: clean. A
// WaitGroup.Wait under the same lock is not.
func (s *store) wait(wg *sync.WaitGroup, ch chan int) {
	s.mu.Lock()
	select {
	case v := <-ch:
		s.n = v
	default:
	}
	s.mu.Unlock()
	s.mu.Lock() // want "s.mu is held across a blocking operation: call to \(\*sync.WaitGroup\).Wait"
	wg.Wait()
	s.mu.Unlock()
}

// Cond.Wait releases the mutex while parked: deliberately not counted.
func (s *store) park(c *sync.Cond) {
	s.mu.Lock()
	for s.n == 0 {
		c.Wait()
	}
	s.mu.Unlock()
}
