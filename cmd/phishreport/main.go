// Command phishreport runs the complete reproduction — corpus generation,
// model training with the paper's protocols, the full crawl, and every
// analysis — and writes a paper-vs-measured Markdown report suitable for
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/brands"
	"repro/internal/core"
	"repro/internal/fielddata"
	"repro/internal/metrics"
	"repro/internal/pagegen"
	"repro/internal/report"
	"repro/internal/sessionio"
	"repro/internal/termclass"
	"repro/internal/textclass"
	"repro/internal/triage"
	"repro/internal/vision"
)

func main() {
	numSites := flag.Int("sites", 5000, "corpus size")
	seed := flag.Int64("seed", 42, "seed")
	workers := flag.Int("workers", 30, "parallel crawl sessions")
	out := flag.String("o", "", "output file (default stdout)")
	detScale := flag.Int("detector-scale", 2000, "detector training pages (paper protocol: 10,000)")
	triageOn := flag.Bool("triage", false, "crawl through the triage funnel and report the campaign-attribution table")
	flag.Parse()

	var b strings.Builder
	section := func(title string) { fmt.Fprintf(&b, "\n## %s\n\n", title) }
	code := func(s string) { fmt.Fprintf(&b, "```\n%s```\n", s) }

	fmt.Fprintf(&b, "# PhishInPatterns — Reproduction Report\n\n")
	fmt.Fprintf(&b, "Corpus: %d sites, seed %d, %d workers. Generated %s.\n",
		*numSites, *seed, *workers, metrics.Now().UTC().Format(time.RFC3339))

	// Model evaluations with the paper's protocols.
	section("Table 6 — input-field classifier (1,000 train / 310 test)")
	corpus := fielddata.Corpus(*seed)
	train, test := fielddata.Split(corpus)
	m, err := textclass.Train(train, textclass.TrainConfig{Seed: *seed, Epochs: 40})
	if err != nil {
		log.Fatal(err)
	}
	conf := metrics.NewConfusion()
	for _, s := range test {
		pred, _ := m.Predict(s.Text)
		conf.Add(s.Label, pred)
	}
	code(report.Table6(conf))

	section("Table 5 — CAPTCHA/button/logo detector (generated-page protocol)")
	det, err := vision.Train(pagegen.GenerateSet(*detScale, *seed+1, pagegen.Config{}), *seed+2)
	if err != nil {
		log.Fatal(err)
	}
	val := vision.Evaluate(det, pagegen.GenerateSet(*detScale/10, *seed+3, pagegen.Config{}))
	testRes := vision.Evaluate(det, pagegen.GenerateSet(*detScale/5, *seed+4, pagegen.Config{}))
	fmt.Fprintf(&b, "Validation mean AP %.1f (paper 91.9); test mean AP %.1f (paper 92.0)\n\n", val.MeanAP*100, testRes.MeanAP*100)
	code(report.Table5(testRes))

	section("Terminal-page classifier (200 train / 100 test, reject 0.65)")
	tcl, err := termclass.Train(*seed + 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&b, "Accuracy: %.1f%% (paper: 97%%)\n", tcl.Evaluate(*seed+6, termclass.TestSize)*100)

	// Full crawl.
	copts := core.Options{NumSites: *numSites, Seed: *seed, Workers: *workers, DetectorTrainPages: 600}
	if *triageOn {
		copts.Triage = &triage.Options{}
	}
	p, err := core.NewPipeline(copts)
	if err != nil {
		log.Fatal(err)
	}
	p.Crawl()
	logs := p.Logs

	section("Crawl statistics (Section 4.6)")
	fmt.Fprintf(&b, "Crawled %d sites in %s with %d workers (%.0f sites/day extrapolated; paper: >1,000/day on 30 sessions).\n",
		p.Stats.Sites, p.Stats.Elapsed.Round(time.Millisecond), *workers, p.Stats.SitesPerDay())
	fmt.Fprintf(&b, "Outcomes: %v\n", p.Stats.Outcomes)

	section("Per-stage latency (session-logical clock)")
	code(metrics.StageTable(p.Stats.Stages))
	section("Session timeline (deepest crawl session)")
	code(report.SessionTimeline(report.PickTimelineSession(logs)))

	section("Table 1 — crawling summary")
	code(report.Table1(analysis.Summarize(p.Feed, logs), *numSites))
	section("Table 2 — business categories")
	code(report.Table2(analysis.CategoryCounts(logs), *numSites))
	section("Table 3 — brand impersonation vs cloning")
	code(report.Table3(analysis.Cloning(logs, p.Gallery, brands.Table3Brands(), 50)))
	tc := analysis.Termination(logs, p.TermClassifier)
	section("Table 4 — terminal-redirect domains")
	code(report.Table4(tc, *numSites))
	section("Table 7 — top targeted brands")
	code(report.Table7(analysis.BrandCounts(logs), *numSites))
	section("Figure 7 — input-field distribution")
	code(report.Figure7(analysis.FieldsAcrossPages(logs), *numSites))
	section("Figure 8 — multi-step page counts")
	code(report.Figure8(analysis.PageCountHistogram(logs), *numSites))
	section("Figure 9 — fields per stage")
	code(report.Figure9(analysis.FieldsPerStage(logs)))
	section("Section 5 scalar measurements")
	code(report.SectionRates(
		analysis.Obfuscation(logs),
		analysis.Keylogging(logs),
		analysis.DoubleLoginCount(logs),
		analysis.ClickThrough(logs),
		analysis.Captchas(logs, p.CaptchaAnalysisOptions()),
		analysis.TwoFactor(logs),
		tc, *numSites))
	fmt.Fprintf(&b, "\nCampaign clusters: %d measured | %d generated | 8,472 paper.\n",
		analysis.ClusterCampaigns(logs), p.Corpus.Campaigns)

	if t := report.TriageTable(logs); t != "" {
		section("Triage funnel and campaign attribution")
		code(t)
	}

	if *out == "" {
		fmt.Print(b.String())
		return
	}
	// Atomic replace: a crash mid-write must never leave a truncated
	// report over a previous complete one.
	if err := sessionio.WriteRaw(*out, []byte(b.String())); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report written to %s\n", *out)
}
