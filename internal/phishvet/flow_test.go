package phishvet

import (
	"strings"
	"testing"
)

// loadFixture loads one testdata fixture tree through the shared loader.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := testLoader(t).Load("internal/phishvet/testdata/src/" + name + "/...")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// findFunc locates a declared function by its display name within the
// graph, optionally narrowed by a package-path suffix.
func findFunc(t *testing.T, cg *CallGraph, pkgSuffix, display string) *FuncInfo {
	t.Helper()
	for _, fi := range cg.Funcs() {
		if funcDisplay(fi.Fn) == display && strings.HasSuffix(fi.Pkg.Path, pkgSuffix) {
			return fi
		}
	}
	t.Fatalf("function %s not found in %s", display, pkgSuffix)
	return nil
}

func TestCallGraphEdges(t *testing.T) {
	pkgs := loadFixture(t, "locknoblock")
	cg := BuildCallGraph(pkgs)

	flush := findFunc(t, cg, "locknoblock", "(*locknoblock.store).flush")
	var callees []string
	for _, c := range cg.Callees(flush.Fn) {
		callees = append(callees, funcDisplay(c))
	}
	joined := strings.Join(callees, " ")
	if !strings.Contains(joined, "(*locknoblock.store).writeLocked") {
		t.Errorf("flush callees = %v, want (*store).writeLocked among them", callees)
	}
	// Lock/Unlock on the embedded sync.Mutex resolve to stdlib methods —
	// present as edges, but with no FuncInfo (not declared in the module).
	if !strings.Contains(joined, "(*sync.Mutex).Lock") {
		t.Errorf("flush callees = %v, want (*sync.Mutex).Lock among them", callees)
	}
	for _, c := range cg.Callees(flush.Fn) {
		if funcDisplay(c) == "(*sync.Mutex).Lock" && cg.Info(c) != nil {
			t.Error("stdlib method has a module FuncInfo")
		}
	}

	wl := findFunc(t, cg, "locknoblock", "(*locknoblock.store).writeLocked")
	if wl.Decl == nil || wl.Decl.Body == nil {
		t.Error("writeLocked FuncInfo lost its declaration")
	}

	// Calls inside function literals fold into the enclosing declaration.
	pkgs2 := loadFixture(t, "goroleak")
	cg2 := BuildCallGraph(pkgs2)
	worker := findFunc(t, cg2, "goroleak", "goroleak.worker")
	var names []string
	for _, c := range cg2.Callees(worker.Fn) {
		names = append(names, funcDisplay(c))
	}
	if !strings.Contains(strings.Join(names, " "), "(*sync.WaitGroup).Done") {
		t.Errorf("worker callees = %v, want the closure's wg.Done folded in", names)
	}
}

func TestBlockAnalysisTransitive(t *testing.T) {
	pkgs := loadFixture(t, "locknoblock")
	cg := BuildCallGraph(pkgs)
	ba := newBlockAnalysis(cg)

	wl := findFunc(t, cg, "locknoblock", "(*locknoblock.store).writeLocked")
	if res := ba.fnBlocks(wl.Fn); !res.blocks {
		t.Error("writeLocked should block (file I/O)")
	}
	// flush blocks transitively through writeLocked.
	flush := findFunc(t, cg, "locknoblock", "(*locknoblock.store).flush")
	if res := ba.fnBlocks(flush.Fn); !res.blocks {
		t.Error("flush should block through writeLocked")
	}
	// park only calls Cond.Wait, which releases its mutex: not blocking.
	park := findFunc(t, cg, "locknoblock", "(*locknoblock.store).park")
	if res := ba.fnBlocks(park.Fn); res.blocks {
		t.Errorf("park should not count Cond.Wait as blocking (leaf %q)", res.leaf)
	}
}

func TestTaintSummaries(t *testing.T) {
	pkgs := loadFixture(t, "detertaint")
	cg := BuildCallGraph(pkgs)
	ta := newTaintAnalysis(cg)

	// stamper.Stamp reads the seam clock: its single result carries the
	// source bit out to callers.
	stamp := findFunc(t, cg, "stamper", "stamper.Stamp")
	sum := ta.summary(stamp.Fn)
	if len(sum.results) != 1 || sum.results[0]&maskSource == 0 {
		t.Errorf("Stamp summary results = %v, want source bit set", sum.results)
	}
	if len(sum.hits) != 0 {
		t.Errorf("Stamp itself reaches no sink, got hits %v", sum.hits)
	}

	// record sinks its second parameter symbolically: callers are charged.
	record := findFunc(t, cg, "detertaint", "detertaint.record")
	sum = ta.summary(record.Fn)
	if got := sum.paramToSink[1]; got != "journal.AppendNote" {
		t.Errorf("record paramToSink[1] = %q, want journal.AppendNote", got)
	}
	if len(sum.hits) != 0 {
		t.Errorf("record passes only parameter taint, got hits %v", sum.hits)
	}

	// The laundered flow lands as a hit in the calling function.
	flagged := findFunc(t, cg, "detertaint", "detertaint.flagged")
	sum = ta.summary(flagged.Fn)
	if len(sum.hits) != 1 || sum.hits[0].sink != "journal.AppendNote" {
		t.Fatalf("flagged hits = %v, want one journal.AppendNote hit", sum.hits)
	}
	// Seed-derived bytes stay clean.
	clean := findFunc(t, cg, "detertaint", "detertaint.clean")
	if sum = ta.summary(clean.Fn); len(sum.hits) != 0 {
		t.Errorf("clean hits = %v, want none", sum.hits)
	}
}

// TestLoaderBrokenFixture pins the loader's failure mode for source that
// parses but does not type-check: the error lands in pkg.TypeErrors with
// a position and message, nothing panics, and no diagnostics are minted
// from the half-typed package by accident.
func TestLoaderBrokenFixture(t *testing.T) {
	pkgs, err := testLoader(t).Load("internal/phishvet/testdata/src/broken/...")
	if err != nil {
		t.Fatalf("type errors must be collected, not returned from Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) == 0 {
		t.Fatal("broken fixture produced no type errors")
	}
	msg := pkgs[0].TypeErrors[0].Error()
	if !strings.Contains(msg, "broken.go") {
		t.Errorf("type error %q does not name the file", msg)
	}
}
