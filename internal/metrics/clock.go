package metrics

import "time"

// This file is the project's only sanctioned wall-clock entry point
// outside _test.go files. Crawl *output* must be a pure function of the
// feed seed, so seeded code never reads the clock; operational code that
// legitimately needs wall time — throughput accounting, report headers —
// routes through here, where phishvet's wallclock rule can see exactly
// what depends on it. phishvet exempts only this file inside
// internal/metrics, so even the rest of this package must route through
// the seam.

// now is the package's single clock read. Tests swap it via
// SetClockForTest so everything downstream of the seam — Now, Stopwatch,
// StageTimings.Start/ObserveSince — is drivable by a fake clock.
var now = time.Now

// Now returns the current wall-clock time.
func Now() time.Time { return now() }

// SetClockForTest replaces the package clock and returns a restore
// function. It exists so timing code can be tested against a
// deterministic clock; production code must never call it.
func SetClockForTest(clock func() time.Time) (restore func()) {
	prev := now
	now = clock
	return func() { now = prev }
}

// Stopwatch measures elapsed wall-clock time for operational accounting
// (farm throughput, stage totals). It never feeds session output.
type Stopwatch struct{ start time.Time }

// NewStopwatch starts a stopwatch.
func NewStopwatch() Stopwatch { return Stopwatch{start: now()} }

// Elapsed returns the wall-clock time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return now().Sub(s.start) }
