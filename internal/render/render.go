// Package render paints a laid-out DOM into a raster image — the system's
// screenshot pipeline. It honours the style subset the corpus uses:
// background colors and images, text color, hidden elements, and the visual
// chrome of interactive elements (input boxes, buttons, selects). Crucially,
// background images are composited into the raster, so label text that
// exists only inside an image (the Figure 3 evasion) appears in the
// screenshot and nowhere in the DOM.
package render

import (
	"strings"

	"repro/internal/dom"
	"repro/internal/layout"
	"repro/internal/raster"
)

// ImageResolver fetches an image resource by URL (or data URI). Returning
// nil means the image is unavailable; a gray placeholder is drawn.
type ImageResolver func(url string) *raster.Image

// Page couples a screenshot with the layout it was produced from.
type Page struct {
	Screenshot *raster.Image
	Layout     *layout.Result
}

// Render lays out and paints doc at the given viewport width. resolve may be
// nil when the document references no images. The screenshot and layout draw
// their storage from pools; callers that fully own the Page may hand the
// storage back with Release, and callers that don't simply let the GC have
// it — contents are identical either way.
func Render(doc *dom.Node, viewportW int, resolve ImageResolver) *Page {
	lay := layout.Compute(doc, viewportW)
	h := lay.Height
	if h < 200 {
		h = 200
	}
	if h > 4000 {
		h = 4000
	}
	img := raster.Get(viewportW, h, raster.White)
	body := dom.Body(doc)
	paint(img, lay, body, resolve)
	return &Page{Screenshot: img, Layout: lay}
}

// Release returns the Page's screenshot buffer and layout maps to their
// pools. The Page, its Screenshot, and its Layout must not be used
// afterwards, and no live view of the screenshot's pixels may remain — the
// caller asserts sole ownership. Optional: an unreleased Page is collected
// normally.
func (p *Page) Release() {
	if p == nil {
		return
	}
	p.Screenshot.Release()
	p.Layout.Release()
	p.Screenshot, p.Layout = nil, nil
}

func paint(img *raster.Image, lay *layout.Result, n *dom.Node, resolve ImageResolver) {
	style := lay.Style(n)
	if style.Display == "none" {
		return
	}
	box, ok := lay.Box(n)
	if ok && !style.Hidden && n.Type == dom.ElementNode {
		paintElement(img, lay, n, box, style, resolve)
	}
	if ok && !style.Hidden && n.Type == dom.TextNode {
		paintText(img, n.Data, box, style.Color)
	}
	// Buttons and selects paint their own labels; their descendants must
	// not be painted again via text-node traversal.
	if n.Type == dom.ElementNode && (n.Tag == "button" || n.Tag == "select") {
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		paint(img, lay, c, resolve)
	}
}

func paintElement(img *raster.Image, lay *layout.Result, n *dom.Node, box raster.Rect, style layout.Style, resolve ImageResolver) {
	// Background color.
	if style.HasBackground {
		img.Fill(box, style.Background)
	}
	// Background image.
	if style.BackgroundImage != "" && resolve != nil {
		if bg := resolve(style.BackgroundImage); bg != nil {
			img.Blit(bg, box.X, box.Y)
		}
	}
	switch n.Tag {
	case "input":
		t := strings.ToLower(n.AttrOr("type", "text"))
		switch t {
		case "checkbox", "radio":
			img.Outline(box, raster.Gray)
		case "submit", "image", "button":
			img.Fill(box, raster.LightGray)
			img.Outline(box, raster.Gray)
			label := n.AttrOr("value", "Submit")
			drawCentered(img, label, box, raster.Black)
		default:
			img.Fill(box, raster.White)
			img.Outline(box, raster.Gray)
			val := n.AttrOr("value", "")
			if val != "" {
				if t == "password" {
					val = strings.Repeat("*", len(val))
				}
				img.DrawString(clipTo(val, box.W-6), box.X+3, box.Y+3, raster.Black)
			} else if ph := n.AttrOr("placeholder", ""); ph != "" {
				img.DrawString(clipTo(ph, box.W-6), box.X+3, box.Y+3, raster.Gray)
			}
		}
	case "select":
		img.Fill(box, raster.White)
		img.Outline(box, raster.Gray)
		label := ""
		if opt := n.FindFirst(func(m *dom.Node) bool { return m.Tag == "option" }); opt != nil {
			label = opt.InnerText()
		}
		img.DrawString(clipTo(label, box.W-14), box.X+3, box.Y+3, raster.Black)
		img.DrawString("v", box.X+box.W-9, box.Y+3, raster.Black)
	case "button":
		bg := raster.LightGray
		if style.HasBackground {
			bg = style.Background
		}
		img.Fill(box, bg)
		img.Outline(box, raster.Gray)
		fg := style.Color
		if bg == raster.Navy || bg == raster.Black || bg == raster.Blue || bg == raster.Maroon {
			fg = raster.White
		}
		drawCentered(img, n.InnerText(), box, fg)
	case "img":
		src := n.AttrOr("src", "")
		var im *raster.Image
		if resolve != nil && src != "" {
			im = resolve(src)
		}
		if im != nil {
			img.Blit(im, box.X, box.Y)
		} else {
			img.Fill(box, raster.LightGray)
			img.Outline(box, raster.Gray)
		}
	case "a":
		// Text is painted via the child text node with the link color; the
		// box may also be styled as a button via background.
		if style.HasBackground {
			img.Fill(box, style.Background)
			img.Outline(box, raster.Gray)
		}
	case "hr":
		img.Fill(raster.R(box.X, box.Y, box.W, 1), raster.Gray)
	case "canvas", "svg":
		// Canvas/SVG submit "tricks": paint whatever text the element
		// carries in a data-label attribute so it is visually present while
		// absent from DOM button analysis.
		if style.HasBackground {
			img.Fill(box, style.Background)
		} else {
			img.Fill(box, raster.LightGray)
		}
		img.Outline(box, raster.Gray)
		drawCentered(img, n.AttrOr("data-label", ""), box, raster.Black)
	}
}

func paintText(img *raster.Image, text string, box raster.Rect, fg raster.Color) {
	text = raster.CollapseSpace(text)
	if text == "" {
		return
	}
	y := box.Y
	maxY := box.Y + box.H + raster.LineH
	raster.WrapEach(text, box.W, func(line string) {
		if y+raster.GlyphH > maxY {
			return
		}
		img.DrawString(line, box.X, y, fg)
		y += raster.LineH
	})
}

func drawCentered(img *raster.Image, label string, box raster.Rect, fg raster.Color) {
	label = clipTo(strings.TrimSpace(label), box.W-4)
	tw := raster.StringWidth(label)
	x := box.X + (box.W-tw)/2
	y := box.Y + (box.H-raster.GlyphH)/2
	if y < box.Y {
		y = box.Y
	}
	img.DrawString(label, x, y, fg)
}

// clipTo truncates s so it fits within w pixels.
func clipTo(s string, w int) string {
	maxChars := w / raster.AdvanceX
	if maxChars <= 0 {
		return ""
	}
	if len(s) <= maxChars {
		return s
	}
	return s[:maxChars]
}
