package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/trace"
)

func traceFixture() []trace.Span {
	return []trace.Span{
		{Kind: trace.KindSession, Name: "http://a.test/", Parent: -1, Start: 0, End: 20 * time.Millisecond},
		{Kind: trace.KindPage, Name: "http://a.test/", Parent: 0, Start: time.Millisecond, End: 19 * time.Millisecond},
		{Kind: trace.KindStage, Name: "render", Parent: 1, Start: 2 * time.Millisecond, End: 12 * time.Millisecond},
	}
}

func TestPickTimelineSession(t *testing.T) {
	deep := &crawler.SessionLog{
		SeedURL: "http://deep.test/",
		Pages:   []crawler.PageLog{{}, {}, {}},
		Trace:   traceFixture(),
	}
	logs := []*crawler.SessionLog{
		nil,
		{SeedURL: "http://untraced.test/", Pages: []crawler.PageLog{{}, {}, {}, {}}}, // no trace: skipped
		{SeedURL: "http://shallow.test/", Pages: []crawler.PageLog{{}}, Trace: traceFixture()},
		deep,
		{SeedURL: "http://tie.test/", Pages: []crawler.PageLog{{}, {}, {}}, Trace: traceFixture()}, // tie: first wins
	}
	if got := PickTimelineSession(logs); got != deep {
		t.Errorf("picked %+v, want the deepest traced session", got)
	}
	if got := PickTimelineSession(nil); got != nil {
		t.Errorf("empty input picked %+v", got)
	}
}

func TestSessionTimeline(t *testing.T) {
	out := SessionTimeline(&crawler.SessionLog{
		SeedURL:  "http://a.test/",
		Outcome:  crawler.OutcomeCompleted,
		Attempts: 1,
		Pages:    []crawler.PageLog{{}},
		Trace:    traceFixture(),
	})
	for _, want := range []string{"http://a.test/", string(crawler.OutcomeCompleted), "render", "█"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if got := SessionTimeline(nil); !strings.Contains(got, "no session") {
		t.Errorf("nil session rendered %q", got)
	}
}
