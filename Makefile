# Developer entry points. Everything is plain go tooling; the targets exist
# so CI and humans run the same commands.

GO ?= go

.PHONY: all build test race vet lint bench bench-json alloc-gate chaos fuzz status-smoke fleet-smoke triage-smoke cloak-smoke check

all: build

build:
	$(GO) build ./...

# Default test gate: lint first (gofmt, go vet, phishvet), the full suite,
# then the race detector over the resilience-critical packages (retry
# queue, fault injector, context deadlines) so a data race on the farm's
# new retry paths fails `make test`.
test: lint
	$(GO) test ./...
	$(GO) test -race ./internal/farm/... ./internal/chaos/... ./internal/browser/... ./internal/fleet/...

# The farm and crawler are the concurrent hot paths (shared stage-timing
# collector, worker pool over one crawler template, retry re-enqueues), and
# the fleet coordinator serves concurrent workers; keep them race-clean.
race:
	$(GO) test -race ./internal/farm/... ./internal/crawler/... ./internal/chaos/... ./internal/browser/... ./internal/fleet/...

vet:
	$(GO) vet ./...

# Static gate: formatting, go vet, and phishvet — the project's
# determinism-and-durability linter, nine rules across two layers: the
# local ones (map-order leaks, wall-clock reads, global randomness,
# dropped durability errors, non-atomic writes) and the flow-aware ones
# built on the call graph and taint engine (locks held across blocking
# ops, leak-prone goroutines, nondeterminism reaching journal sinks,
# non-exhaustive switches over closed const sets). On failure the summary
# line carries per-rule finding counts; `go run ./cmd/phishvet -json ./...`
# emits the same findings one JSON object per line, and `-audit` lists
# every suppression with its justification. See docs/OPERATIONS.md for
# the rule catalog and suppression syntax.
lint:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/phishvet ./...

# The fault-injection matrix: every chaos/retry/deadline/budget test under
# the race detector, plus the crash-recovery suite — journal torn-tail and
# corruption handling, and the kill-and-resume smoke run (SIGKILL a
# journaled crawl mid-run, tear the tail, resume, require output identical
# to an uninterrupted run). This is the resilience acceptance gate — it
# includes the 1-vs-30-worker determinism pin for fault-injected crawls and
# the fleet smoke run (SIGKILL a fleet worker mid-lease; the re-issued
# lease and merged output must still match a single process exactly).
chaos: status-smoke fleet-smoke triage-smoke cloak-smoke
	$(GO) test -race -run 'Chaos|Retry|Fault|Panic|Deadline|Budget|Takedown|Dead|Stall|Truncat|Backoff|SessionContext|ClassifyError|Journal|TornTail|Resume|Lease|Worker|Cloak' \
		./internal/chaos/... ./internal/farm/... ./internal/crawler/... ./internal/browser/... ./internal/journal/... ./internal/fleet/...
	$(GO) test -run 'KillResumeSmoke' ./cmd/phishcrawl/...

# Live-telemetry smoke: start a short crawl with -status-addr, hit the
# /status endpoint mid-run (JSON and plain text), and require well-formed
# progress counts and per-stage p50/p90/p99. The curl equivalent is
# `curl http://ADDR/status?format=json`.
status-smoke:
	$(GO) test -run 'StatusSmoke' ./cmd/phishcrawl/...

# Distributed-determinism smoke: a coordinator and two loopback workers
# crawl the feed as a fleet, one worker is SIGKILLed mid-lease (forcing a
# lease expiry and re-issue) and a replacement joins mid-run, and the
# coordinator's merged export must match a single-process run
# byte-for-byte. See docs/DISTRIBUTED.md.
fleet-smoke:
	$(GO) test -run 'FleetSmoke' ./cmd/phishcrawl/...

# Triage acceptance smoke: crawl a clone-heavy synthetic feed (~90%
# near-duplicates) with -triage and require >= 5x fewer full browser
# sessions, zero recall loss against a full crawl, and byte-identical
# exports across 1-vs-30 workers and a SIGKILL + torn-tail + resume of a
# journaled triage run. See docs/OPERATIONS.md ("Clone-heavy feeds").
triage-smoke:
	$(GO) test -run 'TriageSmoke' ./cmd/phishcrawl/...

# Cloaking acceptance smoke: crawl a majority-cloaked corpus and require
# that the honest crawl loses those sites to benign decoys, that the
# adaptive uncloaking loop (-cloak-retries) recovers >= 90% of them into
# real measurements, and that exports stay byte-identical across
# 1-vs-30 workers and a SIGKILL + torn-tail + resume of a journaled
# adaptive run. See docs/OPERATIONS.md ("Cloaked feeds").
cloak-smoke:
	$(GO) test -run 'CloakSmoke' ./cmd/phishcrawl/...

# Coverage-guided fuzzing of the journal's record framing: encode/decode
# round-trips, CRC mismatch detection, and hostile length prefixes.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzRecordRoundTrip -fuzztime=15s ./internal/journal

# Hot-path microbenchmarks plus the end-to-end throughput run. Scale the
# corpus with PHISH_BENCH_SITES (default 600).
bench:
	$(GO) test -run='^$$' -bench='BenchmarkDetect|BenchmarkOCRPage|BenchmarkCrawlThroughput|BenchmarkNewPipeline' -benchmem ./...

# Machine-readable benchmark snapshot: runs the same selection as `bench`
# plus the triage funnel benchmark, and writes BENCH_8.json (sites/sec,
# ns/op, B/op, allocs/op, triage hit-rate and fast-path latency per
# benchmark). Commit the refreshed file when perf-relevant code changes.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_8.json

# Allocation gates: the per-session allocs/op budgets and the
# pooled-vs-unpooled byte-identity pins (testing.AllocsPerRun enforces the
# budget; a pooling regression fails here before it shows up in bench).
alloc-gate:
	$(GO) test -run 'Alloc|Pooled|HasTokens' ./internal/crawler/... ./internal/textclass/...

check: build lint test race alloc-gate
